(* Command-line front end for the evaluation harness: pick experiments,
   scale, seed and thread sweep without recompiling. The default `bench`
   executable runs everything; this tool is for exploring single data
   points, e.g.

     respct_experiments map --system respct --threads 16 --update 90
     respct_experiments queue --system pmthreads --threads 64
     respct_experiments recover --buckets 100000 --recovery-threads 32
     respct_experiments figures fig8 fig11 --scale paper *)

open Cmdliner
open Harness
module Arg = Cmdliner.Arg

let scale_arg =
  Arg.(
    value
    & opt
        (enum [ ("small", Experiments.small); ("paper", Experiments.paper) ])
        Experiments.small
    & info [ "scale" ] ~doc:"Experiment scale: small or paper.")

let threads_arg =
  Arg.(value & opt int 16 & info [ "threads" ] ~doc:"Worker thread count.")

let system_arg =
  let systems =
    [
      ("transient-dram", Systems.Transient_dram);
      ("transient-nvm", Systems.Transient_nvm);
      ("respct", Systems.Respct);
      ("pmthreads", Systems.Pmthreads);
      ("montage", Systems.Montage);
      ("clobber", Systems.Clobber);
      ("quadra", Systems.Quadra);
      ("soft", Systems.Soft);
      ("dali", Systems.Dali);
      ("friedman", Systems.Friedman);
    ]
  in
  Arg.(
    value
    & opt (enum systems) Systems.Respct
    & info [ "system" ] ~doc:"Persistence system to run.")

let update_arg =
  Arg.(
    value & opt int 50
    & info [ "update" ] ~doc:"Update percentage of the map mix (rest search).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Also write the point's structured results (throughput, \
           memory-event counters, span breakdown) to $(docv).")

let write_point_json path name pt =
  (try Obs.Json.to_file path (Obs.Run.document [ Obs.Run.experiment name [ pt ] ])
   with Sys_error msg ->
     Printf.eprintf "cannot write --json sink: %s\n" msg;
     exit 2);
  Printf.printf "[structured results written to %s]\n" path

let map_cmd =
  let run scale threads system update_pct json =
    match json with
    | None ->
        let r, rt = Experiments.map_point ~update_pct scale system ~threads in
        Printf.printf
          "%s HashMap %d threads %d%% updates: %.2f Mops/s (%d ops)\n"
          (Systems.name_of system) threads update_pct r.Workload.mops
          r.Workload.total_ops;
        Option.iter
          (fun rt ->
            let s = Respct.Runtime.stats rt in
            Printf.printf
              "checkpoints=%d flushed=%d addrs effective-period=%.0fus\n"
              s.Respct.Runtime.checkpoints s.Respct.Runtime.flushed_addrs
              (Respct.Runtime.mean_effective_period rt /. 1e3);
            if s.Respct.Runtime.checkpoints > 0 then
              Printf.printf
                "mutator-stall=%.1fus/ckpt flush-overlap=%.1fus/ckpt\n"
                (s.Respct.Runtime.stall_ns
                /. float_of_int s.Respct.Runtime.checkpoints /. 1e3)
                (s.Respct.Runtime.overlap_ns
                /. float_of_int s.Respct.Runtime.checkpoints /. 1e3))
          rt
    | Some path ->
        let pt =
          Experiments.map_point_obs ~update_pct scale system ~threads
        in
        Printf.printf "%s HashMap %d threads %d%% updates: %.2f Mops/s\n"
          (Systems.name_of system) threads update_pct
          (Experiments.point_mops pt);
        write_point_json path "map" pt
  in
  Cmd.v (Cmd.info "map" ~doc:"One HashMap data point (Figure 8 style).")
    Term.(const run $ scale_arg $ threads_arg $ system_arg $ update_arg
          $ json_arg)

let queue_cmd =
  let run scale threads system json =
    match json with
    | None ->
        let r, _ = Experiments.queue_point scale system ~threads in
        Printf.printf "%s Queue %d threads: %.2f Mops/s (%d ops)\n"
          (Systems.name_of system) threads r.Workload.mops r.Workload.total_ops
    | Some path ->
        let pt = Experiments.queue_point_obs scale system ~threads in
        Printf.printf "%s Queue %d threads: %.2f Mops/s\n"
          (Systems.name_of system) threads
          (Experiments.point_mops pt);
        write_point_json path "queue" pt
  in
  Cmd.v (Cmd.info "queue" ~doc:"One Queue data point (Figure 9 style).")
    Term.(const run $ scale_arg $ threads_arg $ system_arg $ json_arg)

let recover_cmd =
  let buckets_arg =
    Arg.(value & opt int 64_000 & info [ "buckets" ] ~doc:"HashMap buckets.")
  in
  let rthreads_arg =
    Arg.(
      value & opt int 32
      & info [ "recovery-threads" ] ~doc:"Parallel recovery threads.")
  in
  let run scale buckets rthreads =
    let s =
      { scale with Experiments.fig12_buckets = [ buckets ]; recovery_threads = rthreads }
    in
    List.iter
      (fun (label, cells) ->
        Printf.printf "buckets=%s recovery=%sms entries=%s rolled-back=%s\n"
          label (List.nth cells 0) (List.nth cells 1) (List.nth cells 2))
      (Experiments.fig12 ~scale:s ())
  in
  Cmd.v
    (Cmd.info "recover" ~doc:"Crash + parallel recovery (Figure 12 style).")
    Term.(const run $ scale_arg $ buckets_arg $ rthreads_arg)

let figures_cmd =
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"FIGURE" ~doc:"fig8..fig14")
  in
  let run scale names =
    let app_scale =
      if scale.Experiments.label = "paper" then App_experiments.paper
      else App_experiments.small
    in
    let print_rows title header rows = Table.print ~title ~header rows in
    List.iter
      (fun name ->
        match name with
        | "fig8" ->
            List.iter
              (fun (pct, rows) ->
                print_rows
                  (Printf.sprintf "Figure 8 (%d%% updates)" pct)
                  ("threads:"
                  :: List.map string_of_int scale.Experiments.sweep_threads)
                  rows)
              (Experiments.fig8 ~scale ())
        | "fig9" ->
            print_rows "Figure 9"
              ("threads:"
              :: List.map string_of_int scale.Experiments.sweep_threads)
              (Experiments.fig9 ~scale ())
        | "fig10" ->
            print_rows "Figure 10"
              [ "config:"; "Queue"; "HashMap-RI"; "HashMap-WI" ]
              (Experiments.fig10 ~scale ())
        | "fig11" ->
            print_rows "Figure 11"
              [ "period"; "norm. throughput"; "effective period" ]
              (Experiments.fig11 ~scale ())
        | "fig12" ->
            print_rows "Figure 12"
              [ "buckets"; "recovery (ms)"; "entries"; "rolled back" ]
              (Experiments.fig12 ~scale ())
        | "fig13" ->
            print_rows "Figure 13"
              [ "config:"; "Dedup"; "Swaptions"; "MatMul"; "LR" ]
              (App_experiments.fig13 ~scale:app_scale ())
        | "fig14" ->
            print_rows "Figure 14"
              [ "config:"; "RI"; "balanced"; "WI" ]
              (App_experiments.fig14 ~scale:app_scale ())
        | other -> Printf.eprintf "unknown figure %s\n" other)
      names
  in
  Cmd.v (Cmd.info "figures" ~doc:"Regenerate selected figures.")
    Term.(const run $ scale_arg $ names)

let integrity_cmd =
  let threads_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "threads" ]
          ~doc:"Restrict the sweep to one worker thread count.")
  in
  let run scale threads json =
    let threads = Option.map (fun t -> [ t ]) threads in
    let pts = Experiments.integrity_points ~scale ?threads () in
    let sweep =
      Option.value ~default:scale.Experiments.sweep_threads threads
    in
    Table.print ~title:"Integrity tax (ResPCT sealed/raw Mops, delta)"
      ~header:("threads:" :: List.map string_of_int sweep)
      (Experiments.integrity_overhead_rows pts);
    match json with
    | None -> ()
    | Some path ->
        let sel f =
          List.concat_map (fun (_, cells) -> List.map f cells) pts
        in
        (try
           Obs.Json.to_file path
             (Obs.Run.document
                [
                  Obs.Run.experiment "integrity-off"
                    (sel (fun (_, off, _) -> off));
                  Obs.Run.experiment "integrity-on"
                    (sel (fun (_, _, on) -> on));
                ])
         with Sys_error msg ->
           Printf.eprintf "cannot write --json sink: %s\n" msg;
           exit 2);
        Printf.printf "[structured results written to %s]\n" path
  in
  Cmd.v
    (Cmd.info "integrity"
       ~doc:
         "Checksum-overhead sweep: ResPCT with sealed metadata \
          (config.integrity) against the raw representation, Queue and \
          HashMap workloads.")
    Term.(const run $ scale_arg $ threads_opt $ json_arg)

let perf_cmd =
  let preset_arg =
    Arg.(
      value
      & opt (enum [ ("default", Perf.Suite.default_preset);
                    ("smoke", Perf.Suite.smoke_preset) ])
          Perf.Suite.default_preset
      & info [ "preset" ]
          ~doc:
            "Benchmark preset: default (the fig8/fig9 sweeps at the \
             figures' scale) or smoke (shrunk worlds for CI).")
  in
  let runs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "runs" ] ~doc:"Measured repetitions (preset default if unset).")
  in
  let warmup_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "warmup" ] ~doc:"Discarded warmup runs (preset default if unset).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"Seed for the bootstrap confidence intervals.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_PR9.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Benchmark document destination.")
  in
  let compare_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"BASELINE"
          ~doc:
            "Compare against a committed baseline document and exit \
             nonzero on regression beyond the noise tolerances.")
  in
  let wall_tol_arg =
    Arg.(
      value
      & opt Arg.float Perf.Compare.default_wall_tolerance
      & info [ "wall-tolerance" ]
          ~doc:
            "Allowed fractional drop in calibration-normalised wall \
             throughput before --compare fails.")
  in
  let sim_tol_arg =
    Arg.(
      value
      & opt Arg.float Perf.Compare.default_sim_tolerance
      & info [ "sim-tolerance" ]
          ~doc:
            "Allowed fractional drop in simulated throughput before \
             --compare fails (deterministic, so keep tight).")
  in
  let only_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"BENCH" ~doc:"Run a single benchmark by name.")
  in
  let run preset runs warmup seed out compare wall_tol sim_tol only =
    let ms = Perf.Suite.run ?runs ?warmup ~seed ?only preset in
    if ms = [] then begin
      Printf.eprintf "no benchmark selected (check --only)\n";
      exit 2
    end;
    let calibration = Perf.Bench.calibrate () in
    Printf.printf "calibration: %.1f Mips\n" calibration;
    List.iter
      (fun (m : Perf.Bench.measurement) ->
        let w = m.Perf.Bench.wall_kops and s = m.Perf.Bench.sim_mops in
        Printf.printf
          "%-12s wall %8.1f kops/s (mad %.1f, ci95 [%.1f, %.1f])  sim %6.3f \
           Mops/s\n"
          m.Perf.Bench.name w.Perf.Stat.s_median w.Perf.Stat.s_mad
          w.Perf.Stat.s_ci_lo w.Perf.Stat.s_ci_hi s.Perf.Stat.s_median)
      ms;
    (* The pause probe only makes sense for full-suite runs; --only is for
       iterating on one benchmark. *)
    if only = None then
      List.iter
        (fun (p : Perf.Suite.pause) ->
          Printf.printf
            "checkpoint-pause %-8s stall %8.1f us/ckpt  overlap %8.1f \
             us/ckpt  (%d checkpoints)\n"
            p.Perf.Suite.pause_mode p.Perf.Suite.pause_stall_us
            p.Perf.Suite.pause_overlap_us p.Perf.Suite.pause_checkpoints)
        (Perf.Suite.checkpoint_pause preset);
    let doc = Perf.Suite.document ~calibration preset ms in
    (try Obs.Json.to_file out doc
     with Sys_error msg ->
       Printf.eprintf "cannot write %s: %s\n" out msg;
       exit 2);
    Printf.printf "[benchmark document written to %s]\n" out;
    match compare with
    | None -> ()
    | Some path -> (
        match Obs.Json.of_file path with
        | Error msg ->
            Printf.eprintf "cannot load baseline %s: %s\n" path msg;
            exit 2
        | Ok baseline ->
            let report =
              Perf.Compare.compare ~wall_tolerance:wall_tol
                ~sim_tolerance:sim_tol ~baseline ~current:doc ()
            in
            Perf.Compare.print_report Format.std_formatter report;
            if not (Perf.Compare.ok report) then exit 1)
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Statistical benchmark harness: warmup + repetition over the \
          fig8/fig9 sweeps, median/MAD/bootstrap-CI summaries, \
          deterministic JSON export, optional regression gate.")
    Term.(
      const run $ preset_arg $ runs_arg $ warmup_arg $ seed_arg $ out_arg
      $ compare_arg $ wall_tol_arg $ sim_tol_arg $ only_arg)

let crashmatrix_cmd =
  let deep_arg =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:"Deep preset (more ops, seeds and schedules) instead of smoke.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"Smoke preset (the default; kept for clarity).")
  in
  let scenario_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"PREFIX"
          ~doc:"Only run scenarios whose id starts with $(docv).")
  in
  let no_pcso_arg =
    Arg.(
      value & flag
      & info [ "no-pcso" ]
          ~doc:"Run under the word-granular write-back ablation.")
  in
  let ablation_arg =
    Arg.(
      value & flag
      & info [ "ablation-check" ]
          ~doc:
            "Check the PCSO-reliance asymmetry: under word-granular \
             write-back, InCLL-based systems must report violations and \
             explicitly-flushing systems must not.")
  in
  let no_schedules_arg =
    Arg.(
      value & flag
      & info [ "no-schedules" ] ~doc:"Skip the schedule-exploration sweeps.")
  in
  let faults_arg =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Run the media-fault dimension: layer deterministic torn / \
             poisoned / bit-flipped / transiently-failing images on every \
             crash image; integrity-mode recovery must detect or exactly \
             repair every fault and the planted no-verification mutant must \
             break.")
  in
  let pipeline_arg =
    Arg.(
      value & flag
      & info [ "pipeline" ]
          ~doc:
            "Run the pipelined-checkpointing dimension: pipeline-mode \
             worlds (async epoch advance, double-buffered commits) must \
             recover at every crash boundary including mid-overlap windows, \
             and the planted overlap-protocol mutants (early seal, missing \
             overlap barrier, eager reclamation) must break with shrunk, \
             replayable counterexamples. Includes the pipelined schedule \
             sweep.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"SCENARIO"
          ~doc:
            "Replay one counterexample (as printed by a failing run) \
             instead of exploring; combine with --ops, --sched-seed, \
             --mem-seed, --crash-index, --image and --no-pcso.")
  in
  let ops_arg =
    Arg.(value & opt int 18 & info [ "ops" ] ~doc:"Replay: operation count.")
  in
  let sched_seed_arg =
    Arg.(
      value & opt int 1 & info [ "sched-seed" ] ~doc:"Replay: scheduler seed.")
  in
  let mem_seed_arg =
    Arg.(value & opt int 1 & info [ "mem-seed" ] ~doc:"Replay: memory seed.")
  in
  let crash_index_arg =
    Arg.(
      value & opt int 0
      & info [ "crash-index" ] ~doc:"Replay: persist-event boundary to crash at.")
  in
  let image_arg =
    Arg.(
      value & opt string "baseline"
      & info [ "image" ] ~docv:"VARIANT"
          ~doc:
            "Replay: adversarial image variant (baseline, all, line:N or \
             word:N).")
  in
  let fault_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ]
          ~doc:
            "Replay: media-fault seed layered on the image (as printed by a \
             failing --faults run).")
  in
  let backend_arg =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("file", `File) ]) `Sim
      & info [ "backend" ]
          ~doc:
            "Crash medium: sim (the cache-model dimensions) or file (the \
             Filemem dimension: virtual power cuts over memory-mapped \
             images, held to the prockill digest oracles with exact \
             shrinking; --replay takes its seed=..;..;mutant=.. strings).")
  in
  let run deep _smoke scenario no_pcso ablation no_schedules faults pipeline
      backend replay ops sched_seed mem_seed crash_index image fault_seed =
    let ppf = Fmt.stdout in
    if backend = `File then begin
      let dir = Service.Front.fresh_dir () in
      let ok =
        match replay with
        | Some s -> (
            match Crashtest.Filematrix.replay s ~dir with
            | Error msg ->
                Fmt.epr "%s@." msg;
                exit 2
            | Ok (_, o) ->
                if o.Crashtest.Filematrix.fo_violations = [] then begin
                  Fmt.pf ppf "replay %s: recovery passed (no violation)@." s;
                  true
                end
                else begin
                  Fmt.pf ppf "replay %s: violation reproduced: %a@." s
                    Fmt.(list ~sep:comma Crashtest.Filematrix.pp_violation)
                    o.Crashtest.Filematrix.fo_violations;
                  false
                end)
        | None ->
            let p =
              if deep then Crashtest.Matrix.deep else Crashtest.Matrix.smoke
            in
            Crashtest.Filematrix.check ~dir p ppf
      in
      (try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ());
      if not ok then exit 1
    end
    else
    match replay with
    | Some id -> (
        let build =
          match Crashtest.Scenarios.find id with
          | Some e -> Some e.Crashtest.Scenarios.build
          | None -> Crashtest.Irscenarios.find id
        in
        match build with
        | None ->
            Fmt.epr "unknown scenario %s (know: %s)@." id
              (String.concat ", "
                 (List.map
                    (fun (e : Crashtest.Scenarios.entry) -> e.Crashtest.Scenarios.id)
                    (Crashtest.Scenarios.all
                    @ Crashtest.Scenarios.fault_scenarios
                    @ List.map fst Crashtest.Scenarios.pipeline_scenarios)
                 @ List.map fst (Crashtest.Irscenarios.corpus ())));
            exit 2
        | Some build -> (
            match Crashtest.Report.variant_of_string image with
            | Error msg ->
                Fmt.epr "%s@." msg;
                exit 2
            | Ok variant -> (
                let sc =
                  build ~sched_seed ~mem_seed ~pcso:(not no_pcso) ~n_ops:ops
                in
                match
                  Crashtest.Explore.check_point ?fault_seed sc ~crash_index
                    ~variant
                with
                | Ok () ->
                    Fmt.pf ppf "replay %s: recovery passed (no violation)@." id
                | Error reason ->
                    Fmt.pf ppf "replay %s: violation reproduced: %s@." id
                      reason;
                    exit 1)))
    | None ->
        let p = if deep then Crashtest.Matrix.deep else Crashtest.Matrix.smoke in
        let filter = scenario in
        let ok =
          if ablation then Crashtest.Matrix.ablation_check ?filter p ppf
          else if faults then Crashtest.Matrix.faults_check ?filter p ppf
          else if pipeline then Crashtest.Matrix.pipeline_check ?filter p ppf
          else
            Crashtest.Matrix.run ~pcso:(not no_pcso) ?filter
              ~schedules:(not no_schedules) p ppf
        in
        if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "crashmatrix"
       ~doc:
         "Exhaustive crash-point and schedule exploration with \
          durable-linearizability oracles over ResPCT and all baselines.")
    Term.(
      const run $ deep_arg $ smoke_arg $ scenario_arg $ no_pcso_arg
      $ ablation_arg $ no_schedules_arg $ faults_arg $ pipeline_arg
      $ backend_arg $ replay_arg $ ops_arg $ sched_seed_arg $ mem_seed_arg
      $ crash_index_arg $ image_arg $ fault_seed_arg)

let analyze_cmd =
  let program_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "program" ] ~docv:"NAME"
          ~doc:"Only analyse the corpus program $(docv).")
  in
  let iters_arg =
    Arg.(
      value & opt int 8
      & info [ "iters" ] ~doc:"Loop iteration count for the IR corpus.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the JSON diagnostics document to $(docv).")
  in
  let strip_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "strip-log" ] ~docv:"VAR"
          ~doc:
            "Drop $(docv) from each inferred logging set before linting \
             (the planted mutant; a logged variable makes the gate fail).")
  in
  let dynamic_arg =
    Arg.(
      value & flag
      & info [ "dynamic" ]
          ~doc:
            "Also cross-check each inferred plan against the dynamic \
             restart-point advisor over a recorded simulator run: every \
             dynamically observed WAR variable must be statically logged.")
  in
  let persistency_arg =
    Arg.(
      value & flag
      & info [ "persistency" ]
          ~doc:
            "Print the persist-state crash summary per program (the \
             lifecycle mask per persistent variable plus the \
             must-durable / may-dirty sets) and include it in the JSON \
             document.")
  in
  let mutant_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("strip-psync", Litmus.Axcheck.Strip_psync);
                  ("redundant-pwb", Litmus.Axcheck.Inject_redundant_pwb);
                ]))
          None
      & info [ "mutant" ] ~docv:"KIND"
          ~doc:
            "Plant a flush-discipline mutant ($(b,strip-psync) or \
             $(b,redundant-pwb)) into every program before linting; \
             exit 1 iff the expected finding appears — the CI steps \
             invert this. $(b,strip-psync) additionally runs the \
             axiomatic gate on the WAL litmus twin and writes a shrunk \
             replayable counterexample.")
  in
  let axcheck_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "axcheck" ] ~docv:"N"
          ~doc:
            "Fuzz $(docv) random litmus programs through the static \
             persist-state analyzer and require every must-durable \
             claim to hold in every axiomatically-allowed post-crash \
             state; the first violation is shrunk and written as a \
             replayable counterexample.")
  in
  let axseed_arg =
    Arg.(
      value & opt int 1
      & info [ "axcheck-seed" ] ~doc:"Base seed for --axcheck generation.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay an axcheck counterexample file instead of \
             analysing; exit 1 iff the claim violation reproduces.")
  in
  let ce_arg =
    Arg.(
      value & opt string "axcheck-counterexample.txt"
      & info [ "counterexample-out" ] ~docv:"FILE"
          ~doc:"Where --axcheck and --mutant write a shrunk counterexample.")
  in
  let run program iters out strip dynamic persistency mutant axcheck axseed
      replay ce_file =
    let ppf = Fmt.stdout in
    match replay with
    | Some file -> (
        let text =
          try In_channel.with_open_text file In_channel.input_all
          with Sys_error msg ->
            Fmt.epr "cannot read %s: %s@." file msg;
            exit 2
        in
        match Litmus.Axcheck.counterexample_of_string text with
        | Error msg ->
            Fmt.epr "cannot parse %s: %s@." file msg;
            exit 2
        | Ok c -> (
            match Litmus.Axcheck.replay c with
            | `Reproduced ->
                Fmt.pf ppf
                  "replay %s: must-durable claim on %s violated again@."
                  c.Litmus.Axcheck.cx_prog.Litmus.Prog.name
                  c.Litmus.Axcheck.cx_loc;
                exit 1
            | `Vanished ->
                Fmt.pf ppf "replay %s: no violation (claim on %s holds)@."
                  c.Litmus.Axcheck.cx_prog.Litmus.Prog.name
                  c.Litmus.Axcheck.cx_loc))
    | None ->
    let corpus = Analysis.Corpus.all @ Analysis.Corpus.flush_corpus in
    let selected =
      match program with
      | None -> corpus
      | Some n -> (
          match List.filter (fun (cn, _) -> cn = n) corpus with
          | [] ->
              Fmt.epr "unknown program %s (know: %s)@." n
                (String.concat ", " (List.map fst corpus));
              exit 2
          | l -> l)
    in
    let failed = ref false in
    let expected_rule =
      match mutant with
      | None -> None
      | Some Litmus.Axcheck.Strip_psync ->
          Some "missing-psync-before-dependent-publish"
      | Some Litmus.Axcheck.Inject_redundant_pwb -> Some "redundant-pwb"
    in
    let mutant_hits = ref 0 in
    let docs =
      List.map
        (fun (cname, prog) ->
          let base = prog ~iters in
          let base =
            match mutant with
            | None -> base
            | Some Litmus.Axcheck.Strip_psync ->
                Analysis.Flushlint.strip_psync base
            | Some Litmus.Axcheck.Inject_redundant_pwb ->
                Analysis.Flushlint.inject_redundant_pwb base
          in
          let p, plan = Analysis.Placement.infer base in
          let plan =
            match strip with
            | None -> plan
            | Some v ->
                {
                  plan with
                  Analysis.Placement.log =
                    Analysis.Dataflow.Vars.remove v plan.Analysis.Placement.log;
                }
          in
          let findings = Analysis.Lint.run ~plan p in
          Fmt.pf ppf "== %s ==@.%a@." cname Analysis.Placement.pp_plan plan;
          List.iter (Fmt.pf ppf "%a@." Analysis.Lint.pp_finding) findings;
          (match expected_rule with
          | None -> ()
          | Some r ->
              let hits =
                List.filter
                  (fun (f : Analysis.Lint.finding) ->
                    Analysis.Lint.rule_name f.Analysis.Lint.rule = r)
                  findings
              in
              mutant_hits := !mutant_hits + List.length hits);
          let errors = Analysis.Lint.errors findings in
          if errors <> [] then begin
            failed := true;
            Fmt.pf ppf "%d error(s)@." (List.length errors)
          end;
          let pers_json =
            if not persistency then []
            else begin
              let summary =
                Analysis.Persistate.summarize
                  ~crash_var:Litmus.World.halt_var
                  (Analysis.Persistate.create p)
              in
              Fmt.pf ppf "%a@." Analysis.Persistate.pp_summary summary;
              [ ("persistency", Analysis.Persistate.summary_to_json summary) ]
            end
          in
          let dyn_json =
            if not dynamic then []
            else begin
              let cc = Rp_advisor.cross_check_ir ~n_ops:iters prog in
              Fmt.pf ppf
                "dynamic cross-check: %s (static log {%s} / dynamic {%s}), \
                 %d race(s)@."
                (if cc.Rp_advisor.cc_agrees then "agrees" else "DISAGREES")
                (String.concat ", " cc.Rp_advisor.cc_static_log)
                (String.concat ", " cc.Rp_advisor.cc_dynamic_log)
                (List.length cc.Rp_advisor.cc_races);
              if not cc.Rp_advisor.cc_agrees then failed := true;
              [
                ( "dynamic",
                  Obs.Json.Obj
                    [
                      ("agrees", Obs.Json.Bool cc.Rp_advisor.cc_agrees);
                      ( "dynamic_log",
                        Obs.Json.List
                          (List.map
                             (fun v -> Obs.Json.String v)
                             cc.Rp_advisor.cc_dynamic_log) );
                      ("races", Obs.Json.Int (List.length cc.Rp_advisor.cc_races));
                      ("segments", Obs.Json.Int cc.Rp_advisor.cc_segments);
                    ] );
              ]
            end
          in
          Obs.Json.Obj
            ([
               ("name", Obs.Json.String cname);
               ("plan", Analysis.Placement.plan_to_json p plan);
               ("lint", Analysis.Lint.to_json p findings);
             ]
            @ pers_json @ dyn_json))
        selected
    in
    let write_ce text =
      try
        Out_channel.with_open_text ce_file (fun oc ->
            Out_channel.output_string oc text)
      with Sys_error msg -> Fmt.epr "cannot write %s: %s@." ce_file msg
    in
    (match (mutant, expected_rule) with
    | Some m, Some r ->
        let mname = Litmus.Axcheck.mutant_name m in
        if !mutant_hits > 0 then begin
          failed := true;
          Fmt.pf ppf "mutant %s caught statically: %d %s finding(s)@." mname
            !mutant_hits r
        end
        else Fmt.pf ppf "mutant %s NOT caught (no %s finding)@." mname r;
        if m = Litmus.Axcheck.Strip_psync then begin
          let variant = Litmus.Axiom.Pcso_lazy in
          let shrunk =
            Litmus.Axcheck.minimize ~mutant:m ~variant Litmus.Axcheck.demo
          in
          let claims = Litmus.Axcheck.static_claims shrunk in
          let rep =
            Litmus.Axcheck.check ~variant ~claims
              (Litmus.Axcheck.apply_mutant m shrunk)
          in
          match rep.Litmus.Axcheck.r_violations with
          | [] ->
              failed := true;
              Fmt.pf ppf
                "axcheck: stripped WAL twin shows no claim violation — \
                 the gate lost its teeth@."
          | v :: _ ->
              let c =
                {
                  Litmus.Axcheck.cx_prog = shrunk;
                  cx_variant = variant;
                  cx_mutant = Some m;
                  cx_loc = v.Litmus.Axcheck.v_loc;
                }
              in
              let text = Litmus.Axcheck.counterexample_to_string c in
              write_ce text;
              Fmt.pf ppf
                "axcheck: WAL twin claim violated under %s (replay with \
                 analyze --replay %s):@.%s"
                mname ce_file text
        end
    | _ -> ());
    let ax_json =
      match axcheck with
      | None -> []
      | Some n ->
          let r = Litmus.Axcheck.fuzz ~n ~seed:axseed () in
          Fmt.pf ppf
            "axcheck: %d programs tested, %d skipped (state cap), %d \
             must-durable claims verified@."
            r.Litmus.Axcheck.fz_tested r.Litmus.Axcheck.fz_skipped
            r.Litmus.Axcheck.fz_claims;
          (match r.Litmus.Axcheck.fz_failure with
          | None -> ()
          | Some c ->
              failed := true;
              let text = Litmus.Axcheck.counterexample_to_string c in
              write_ce text;
              Fmt.pf ppf
                "axcheck: shrunk soundness violation (replay with analyze \
                 --replay %s):@.%s"
                ce_file text);
          [ ("axcheck", Litmus.Axcheck.fuzz_to_json r) ]
    in
    (match out with
    | None -> ()
    | Some path -> (
        let doc =
          Obs.Json.Obj
            ([
               ("schema", Obs.Json.String "respct-analyze/v2");
               ("programs", Obs.Json.List docs);
             ]
            @ ax_json)
        in
        try
          Obs.Json.to_file path doc;
          Fmt.pf ppf "[diagnostics written to %s]@." path
        with Sys_error msg ->
          Fmt.epr "cannot write --out sink: %s@." msg;
          exit 2));
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static persistency analysis over the IR corpus: infer restart \
          points and the InCLL-logging plan, run the lint and the \
          persist-state flush-discipline rules, gate the analyzer's \
          must-durable claims against the axiomatic PCSO spec \
          (--axcheck), emit JSON diagnostics; nonzero exit on any error \
          finding (the CI gate).")
    Term.(
      const run $ program_arg $ iters_arg $ out_arg $ strip_arg $ dynamic_arg
      $ persistency_arg $ mutant_arg $ axcheck_arg $ axseed_arg $ replay_arg
      $ ce_arg)

let litmus_cmd =
  let corpus_arg =
    Arg.(
      value & flag
      & info [ "corpus" ]
          ~doc:
            "Check every named corpus test against all three worlds under \
             its declared axiom variants, plus the axiom-level inclusions \
             (eADR admits only no-loss states; the word ablation admits \
             every PCSO state).")
  in
  let fuzz_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz" ] ~docv:"N"
          ~doc:
            "Generate $(docv) random litmus programs and check soundness \
             in every world; the first violation is shrunk and written as \
             a replayable counterexample.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~doc:"Base seed for generation and sampling.")
  in
  let samples_arg =
    Arg.(
      value & opt int 24
      & info [ "samples" ]
          ~doc:"(schedule, crash-image) pairs per program and world.")
  in
  let world_arg =
    Arg.(
      value
      & opt (some (enum
               [ ("kernel", Litmus.World.Kernel);
                 ("ref", Litmus.World.Refm);
                 ("ir", Litmus.World.Ir_mem) ])) None
      & info [ "world" ] ~doc:"Restrict to one world (default: all three).")
  in
  let variant_arg =
    Arg.(
      value
      & opt (enum
               [ ("pcso", Litmus.Axiom.Pcso);
                 ("pcso-lazy", Litmus.Axiom.Pcso_lazy);
                 ("eadr", Litmus.Axiom.Eadr);
                 ("ablation", Litmus.Axiom.Ablation) ])
          Litmus.Axiom.Pcso
      & info [ "variant" ] ~doc:"Axiom variant for --fuzz (default pcso).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a counterexample file written by a failing run \
             instead of exploring; exit 1 iff the violation reproduces.")
  in
  let mutant_arg =
    Arg.(
      value & flag
      & info [ "mutant" ]
          ~doc:
            "Plant the drop-same-line-order kernel mutant (word-granular \
             write-back under PCSO axioms) before checking — for \
             demonstrating detection; a clean run under it means the \
             harness lost its teeth.")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Print every allowed-state set alongside the checks.")
  in
  let ce_arg =
    Arg.(
      value & opt string "litmus-counterexample.txt"
      & info [ "counterexample-out" ] ~docv:"FILE"
          ~doc:"Where --fuzz writes a shrunk counterexample.")
  in
  let run corpus fuzz_n seed samples world variant replay mutant verbose
      ce_file json =
    let ppf = Fmt.stdout in
    let worlds =
      match world with Some w -> [ w ] | None -> Litmus.World.all_ids
    in
    if mutant then
      Litmus.World.set_mutant (Some Litmus.World.Drop_same_line_order);
    match replay with
    | Some file -> (
        let text =
          try In_channel.with_open_text file In_channel.input_all
          with Sys_error msg ->
            Fmt.epr "cannot read %s: %s@." file msg;
            exit 2
        in
        match Litmus.Harness.counterexample_of_string text with
        | Error msg ->
            Fmt.epr "cannot parse %s: %s@." file msg;
            exit 2
        | Ok (p, v) -> (
            match Litmus.Harness.replay p v with
            | `Reproduced observed ->
                Fmt.pf ppf "replay %s: violation reproduced: %a@."
                  p.Litmus.Prog.name
                  (Litmus.Axiom.pp_outcome (Litmus.Prog.locs p))
                  observed;
                exit 1
            | `Vanished observed ->
                Fmt.pf ppf
                  "replay %s: no violation (observed %a is allowed)@."
                  p.Litmus.Prog.name
                  (Litmus.Axiom.pp_outcome (Litmus.Prog.locs p))
                  observed))
    | None -> (
        let failed = ref false in
        let reports = ref [] in
        if corpus then begin
          List.iter
            (fun (e : Litmus.Corpus.entry) ->
              let locs = Litmus.Prog.locs e.Litmus.Corpus.e_prog in
              let ax v =
                Litmus.Axiom.allowed ~variant:v e.Litmus.Corpus.e_prog
              in
              if verbose then
                List.iter
                  (fun v ->
                    Fmt.pf ppf "%-16s %-9s allowed %a@."
                      e.Litmus.Corpus.e_name
                      (Litmus.Axiom.variant_name v)
                      (Litmus.Axiom.pp_outcomes locs)
                      (ax v).Litmus.Axiom.outcomes)
                  e.Litmus.Corpus.e_variants;
              (* axiom-level inclusions *)
              let pcso = ax Litmus.Axiom.Pcso in
              let sub a b =
                Litmus.Axiom.Outcomes.subset a.Litmus.Axiom.outcomes
                  b.Litmus.Axiom.outcomes
              in
              if not (sub (ax Litmus.Axiom.Eadr) pcso) then begin
                failed := true;
                Fmt.pf ppf "%-16s AXIOM FAIL: eadr not within pcso@."
                  e.Litmus.Corpus.e_name
              end;
              if not (sub pcso (ax Litmus.Axiom.Ablation)) then begin
                failed := true;
                Fmt.pf ppf "%-16s AXIOM FAIL: pcso not within ablation@."
                  e.Litmus.Corpus.e_name
              end;
              List.iter
                (fun v ->
                  List.iter
                    (fun w ->
                      let r =
                        Litmus.Harness.check ~samples ~seed ~world:w
                          ~variant:v e.Litmus.Corpus.e_prog
                      in
                      reports := r :: !reports;
                      match r.Litmus.Harness.r_violations with
                      | [] ->
                          Fmt.pf ppf "%-16s %-6s %-9s ok (%d samples)@."
                            e.Litmus.Corpus.e_name
                            (Litmus.World.id_name w)
                            (Litmus.Axiom.variant_name v)
                            r.Litmus.Harness.r_samples
                      | v0 :: _ ->
                          failed := true;
                          Fmt.pf ppf "%-16s %-6s %-9s VIOLATION %a@."
                            e.Litmus.Corpus.e_name
                            (Litmus.World.id_name w)
                            (Litmus.Axiom.variant_name v)
                            (Litmus.Harness.pp_violation locs)
                            v0)
                    worlds)
                e.Litmus.Corpus.e_variants)
            Litmus.Corpus.all
        end;
        let fuzz_json =
          match fuzz_n with
          | None -> Obs.Json.Null
          | Some n ->
              let r =
                Litmus.Harness.fuzz ~n ~seed ~samples ~worlds
                  ~variants:[ variant ] ()
              in
              Fmt.pf ppf
                "fuzz: %d programs tested, %d skipped (state cap)@."
                r.Litmus.Harness.f_tested r.Litmus.Harness.f_skipped;
              (match r.Litmus.Harness.f_failure with
              | None -> ()
              | Some (p, v) ->
                  failed := true;
                  let text = Litmus.Harness.counterexample_to_string p v in
                  (try
                     Out_channel.with_open_text ce_file (fun oc ->
                         Out_channel.output_string oc text)
                   with Sys_error msg ->
                     Fmt.epr "cannot write %s: %s@." ce_file msg);
                  Fmt.pf ppf
                    "fuzz: shrunk violation (replay with --replay %s):@.%s"
                    ce_file text);
              Obs.Json.Obj
                [
                  ("tested", Obs.Json.Int r.Litmus.Harness.f_tested);
                  ("skipped", Obs.Json.Int r.Litmus.Harness.f_skipped);
                  ( "failure",
                    match r.Litmus.Harness.f_failure with
                    | None -> Obs.Json.Null
                    | Some (p, v) ->
                        Obs.Json.Obj
                          [
                            ( "program",
                              Obs.Json.String (Litmus.Prog.to_string p) );
                            ( "violation",
                              Litmus.Harness.violation_to_json v );
                          ] );
                ]
        in
        if (not corpus) && fuzz_n = None then begin
          Fmt.epr "nothing to do: pass --corpus, --fuzz N or --replay@.";
          exit 2
        end;
        (match json with
        | None -> ()
        | Some path -> (
            let doc =
              Obs.Json.Obj
                [
                  ("schema", Obs.Json.String "respct-litmus/v1");
                  ("seed", Obs.Json.Int seed);
                  ("samples", Obs.Json.Int samples);
                  ( "mutant",
                    Obs.Json.Bool
                      (Litmus.World.mutant ()
                      = Some Litmus.World.Drop_same_line_order) );
                  ( "corpus",
                    Obs.Json.List
                      (List.rev_map Litmus.Harness.report_to_json !reports)
                  );
                  ("fuzz", fuzz_json);
                ]
            in
            try
              Obs.Json.to_file path doc;
              Fmt.pf ppf "[litmus results written to %s]@." path
            with Sys_error msg ->
              Fmt.epr "cannot write --json sink: %s@." msg;
              exit 2));
        if !failed then exit 1)
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:
         "Persistency-model litmus testing: check the kernel, the \
          reference model and the analyzer-IR world against the \
          axiomatic PCSO spec on named corpus tests and fuzzed programs, \
          with shrunk replayable counterexamples.")
    Term.(
      const run $ corpus_arg $ fuzz_arg $ seed_arg $ samples_arg $ world_arg
      $ variant_arg $ replay_arg $ mutant_arg $ verbose_arg $ ce_arg
      $ json_arg)

let prockill_cmd =
  let kills_arg =
    Arg.(
      value & opt int 50
      & info [ "kills" ] ~doc:"Fault-free SIGKILL trials to run.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:"Campaign seed (kill delays, workload mix, sub-trial coins).")
  in
  let max_delay_arg =
    Arg.(
      value & opt int 25_000
      & info [ "max-delay-us" ]
          ~doc:"Upper bound on the wall-clock kill delay in microseconds.")
  in
  let mutant_trials_arg =
    Arg.(
      value & opt int 12
      & info [ "mutant-trials" ]
          ~doc:
            "Attempts to catch the planted psync-elision mutant (0 \
             disables the hunt).")
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Directory for trial images and logs (default: /dev/shm when \
             writable, else the system temp dir).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"PARAMS"
          ~doc:
            "Re-run one shrunk counterexample string (as printed by a \
             campaign) instead of running a campaign. Exits 0 if a \
             violation reproduces.")
  in
  let run kills seed max_delay mutant_trials dir replay json =
    match replay with
    | Some s -> (
        let dir =
          match dir with Some d -> d | None -> Prockill.default_dir ()
        in
        match Prockill.replay s ~dir with
        | Error msg ->
            prerr_endline msg;
            exit 2
        | Ok (p, Some o) ->
            Fmt.pr "replay %s: violation reproduced@."
              (Prockill.replay_string p);
            List.iter
              (fun v -> Fmt.pr "  %a@." Prockill.pp_violation v)
              o.Prockill.o_violations;
            exit 0
        | Ok (p, None) ->
            Fmt.pr
              "replay %s: no violation reproduced (the kill point is real \
               time; retry)@."
              (Prockill.replay_string p);
            exit 1)
    | None -> (
        let c =
          Prockill.run ~kills ~seed ~max_delay_us:max_delay ~mutant_trials
            ~progress:(fun m -> Fmt.pr "[prockill] %s@." m)
            ?dir ()
        in
        (match json with
        | Some path -> Obs.Json.to_file path (Prockill.json_of_campaign c)
        | None -> ());
        match c.Prockill.c_skipped with
        | Some reason ->
            Fmt.pr "prockill: SKIPPED (%s)@." reason;
            exit 0
        | None ->
            let nviol = Prockill.violation_count c in
            Fmt.pr "prockill: %d kills, %d violation(s)@." c.Prockill.c_kills
              nviol;
            List.iter
              (fun o ->
                if o.Prockill.o_violations <> [] then begin
                  Fmt.pr "  trial %d (%s):@." o.Prockill.o_params.Prockill.trial
                    (Prockill.replay_string o.Prockill.o_params);
                  List.iter
                    (fun v -> Fmt.pr "    %a@." Prockill.pp_violation v)
                    o.Prockill.o_violations
                end)
              c.Prockill.c_trials;
            (match c.Prockill.c_mutant with
            | None -> ()
            | Some m ->
                if m.Prockill.m_detected then begin
                  Fmt.pr "mutant: psync elision DETECTED after %d trial(s)@."
                    m.Prockill.m_attempts;
                  Option.iter
                    (fun r -> Fmt.pr "  shrunk replay: %s@." r)
                    m.Prockill.m_replay
                end
                else
                  Fmt.pr "mutant: NOT detected in %d trial(s)@."
                    m.Prockill.m_attempts);
            let mutant_ok =
              match c.Prockill.c_mutant with
              | None -> true
              | Some m -> m.Prockill.m_detected
            in
            if nviol = 0 && mutant_ok then exit 0 else exit 1)
  in
  Cmd.v
    (Cmd.info "prockill"
       ~doc:
         "Real-process SIGKILL crash campaign: fork seeded workloads \
          against the file-backed backend, kill them at randomised points, \
          reopen and hold verified recovery to the durability oracles; \
          then catch the planted psync-elision mutant and shrink the \
          counterexample to a replayable string.")
    Term.(
      const run $ kills_arg $ seed_arg $ max_delay_arg $ mutant_trials_arg
      $ dir_arg $ replay_arg $ json_arg)

let service_cmd =
  let preset_arg =
    Arg.(
      value
      & opt (enum [ ("smoke", `Smoke); ("sweep", `Sweep) ]) `Smoke
      & info [ "preset" ]
          ~doc:
            "Service preset: smoke (4 shards, 200 sessions, seconds-scale) \
             or sweep (the ROADMAP target: 8 shards, 10k sessions, 2^20 \
             keys, zipfian hot-key storm).")
  in
  let smoke_flag =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"Alias for --preset smoke (the default).")
  in
  let opt_int name doc =
    Arg.(value & opt (some int) None & info [ name ] ~doc)
  in
  let shards_arg = opt_int "shards" "Override: shard count." in
  let workers_arg = opt_int "workers" "Override: worker threads per shard." in
  let sessions_arg = opt_int "sessions" "Override: concurrent client sessions." in
  let requests_arg = opt_int "requests" "Override: requests per session." in
  let keys_arg = opt_int "keys" "Override: keyspace size." in
  let seed_arg = opt_int "seed" "Override: run seed." in
  let period_us_arg =
    Arg.(
      value
      & opt (some Arg.float) None
      & info [ "period-us" ] ~doc:"Override: per-shard checkpoint period (µs).")
  in
  let backend_arg =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("file", `File) ]) `Sim
      & info [ "backend" ]
          ~doc:
            "Shard medium: sim (in-memory simulator) or file (Filemem \
             images; enables the end-of-run durability audit and crash \
             trials).")
  in
  let crash_at_arg =
    Arg.(
      value
      & opt (some Arg.float) None
      & info [ "crash-at-us" ] ~docv:"T"
          ~doc:
            "Crash-under-load trial: SIGKILL-style crash of one shard at \
             virtual instant $(docv) µs (requires --backend file); the \
             victim recovers via verified recovery while the survivors \
             keep serving.")
  in
  let crash_shard_arg =
    Arg.(
      value & opt int 0
      & info [ "crash-shard" ] ~doc:"Which shard the crash trial kills.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the full structured results (schema respct-service/v1: \
             per-shard counters, latency/depth/batch histograms, span \
             summaries, crash report) to $(docv).")
  in
  let run preset smoke shards workers sessions requests keys seed period_us
      backend crash_at_us crash_shard json =
    let base =
      match (preset, smoke) with
      | `Sweep, false -> Service.Front.sweep
      | _ -> Service.Front.smoke
    in
    let ov v = function None -> v | Some x -> x in
    let dir = match backend with `Sim -> None | `File -> Some (Service.Front.fresh_dir ()) in
    let cfg =
      {
        base with
        Service.Front.shards = ov base.Service.Front.shards shards;
        workers = ov base.Service.Front.workers workers;
        sessions = ov base.Service.Front.sessions sessions;
        requests = ov base.Service.Front.requests requests;
        keys = ov base.Service.Front.keys keys;
        seed = ov base.Service.Front.seed seed;
        period_ns =
          (match period_us with
          | None -> base.Service.Front.period_ns
          | Some us -> us *. 1_000.0);
        backend =
          (match dir with
          | None -> Service.Front.Sim
          | Some d -> Service.Front.File d);
        record_digests = dir <> None;
      }
    in
    let crash_at_ns = Option.map (fun us -> us *. 1_000.0) crash_at_us in
    let r = Service.Front.run ?crash_at_ns ~crash_shard cfg in
    let open Service.Front in
    Printf.printf
      "service: %d shards x %d workers, %d sessions x %d reqs, %d keys \
       (zipf %.2f, %d%% reads)\n"
      cfg.shards cfg.workers cfg.sessions cfg.requests cfg.keys cfg.theta
      cfg.read_pct;
    Printf.printf
      "  completed %d, failed %d, retried %d, rejects %d full / %d down\n"
      r.r_completed r.r_failed r.r_retried r.r_rejected_full r.r_rejected_down;
    Printf.printf
      "  throughput %.3f Mreq/s over %.3f ms; checkpoint stall overlap %.0f \
       ns\n"
      r.r_mrps (r.r_makespan_ns /. 1e6) r.r_stall_overlap_ns;
    List.iter
      (fun sr ->
        Printf.printf
          "  shard %d%s: served %d in %d batches (%d coalesced), max depth \
           %d, %d ckpts, sealed epoch %d, stall %.0f ns\n"
          sr.sr_id
          (if sr.sr_down then " (down)" else "")
          sr.sr_served sr.sr_batches sr.sr_coalesced sr.sr_max_depth
          sr.sr_checkpoints sr.sr_sealed sr.sr_stall_ns)
      r.r_shards;
    let crash_ok =
      match r.r_crash with
      | None -> true
      | Some cr ->
          Printf.printf
            "  crash: shard %d at %.1f µs -> verdict %s, failed epoch %d \
             (sealed %d)%s, dropped %d, recovery %.0f ns, survivors %.3f \
             Mreq/s\n"
            cr.cr_shard (cr.cr_at_ns /. 1e3) cr.cr_verdict cr.cr_failed_epoch
            cr.cr_sealed_at_crash
            (match cr.cr_digest_match with
            | Some true -> ", digest ok"
            | Some false -> ", DIGEST MISMATCH"
            | None -> "")
            cr.cr_dropped cr.cr_recovery_ns cr.cr_survivor_mrps;
          cr.cr_exact && (not cr.cr_lost_sealed)
          && cr.cr_digest_match <> Some false
    in
    let surv_ok = List.for_all (fun sc -> sc.sc_ok) r.r_survivors in
    if r.r_survivors <> [] then
      Printf.printf "  survivor audit: %d/%d ok\n"
        (List.length (List.filter (fun sc -> sc.sc_ok) r.r_survivors))
        (List.length r.r_survivors);
    (match json with
    | None -> ()
    | Some path ->
        (try Obs.Json.to_file path (Service.Front.to_json r)
         with Sys_error msg ->
           Printf.eprintf "cannot write --json sink: %s\n" msg;
           exit 2);
        Printf.printf "[structured results written to %s]\n" path);
    (match dir with
    | Some d -> ( try Unix.rmdir d with Unix.Unix_error (_, _, _) -> ())
    | None -> ());
    if not (crash_ok && surv_ok) then exit 1
  in
  Cmd.v
    (Cmd.info "service"
       ~doc:
         "Sharded KV service: simulated client sessions through admission \
          control and consistent-hash routing into independently-\
          checkpointed ResPCT shards with a rolling checkpoint schedule; \
          optional crash-under-load trial with verified recovery.")
    Term.(
      const run $ preset_arg $ smoke_flag $ shards_arg $ workers_arg
      $ sessions_arg $ requests_arg $ keys_arg $ seed_arg $ period_us_arg
      $ backend_arg $ crash_at_arg $ crash_shard_arg $ json_arg)

let () =
  let info =
    Cmd.info "respct_experiments"
      ~doc:"Explore the ResPCT reproduction's experiments."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            map_cmd;
            queue_cmd;
            recover_cmd;
            figures_cmd;
            integrity_cmd;
            perf_cmd;
            crashmatrix_cmd;
            analyze_cmd;
            litmus_cmd;
            prockill_cmd;
            service_cmd;
          ]))
