(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (section 5). Each experiment prints a table in the shape of
   the corresponding figure: rows are systems (or configurations), columns
   the swept parameter; throughput is virtual-time Mops/s (see DESIGN.md on
   scaling). A Bechamel suite at the end measures the wall-clock cost of
   miniature instances of each experiment, one Test per table/figure.

   Usage: main.exe [fig8] [fig9] [fig10] [fig11] [fig12] [fig13] [fig14]
                   [tab2] [tab3] [bechamel] [all] [--scale small|paper]
                   [--json out.json]
   With no figure argument, everything runs at the small scale.

   With --json, every figX experiment additionally contributes its
   structured results — per-point throughput, memory-event counters,
   metric registry and span breakdown — to one results document written
   when all selected experiments have run. The figures run once; the ASCII
   table and the JSON are two views of the same points. *)

open Harness

let scale = ref Experiments.small
let app_scale = ref App_experiments.small

(* --json sink: experiments append structured results here (newest first);
   the document is written after the selected experiments have run. *)
let json_path : string option ref = ref None
let json_acc : Obs.Json.t list ref = ref []
let collect j = if !json_path <> None then json_acc := j :: !json_acc

let scale_params () =
  [
    ("scale", Obs.Json.String !scale.Experiments.label);
    ( "sweep_threads",
      Obs.Json.List
        (List.map (fun t -> Obs.Json.Int t) !scale.Experiments.sweep_threads)
    );
  ]

let mops_cells pts =
  List.map (fun pt -> Table.fmt_mops (Experiments.point_mops pt)) pts

let thread_header s =
  "threads:" :: List.map string_of_int s.Experiments.sweep_threads

let run_fig8 () =
  let groups = Experiments.fig8_points ~scale:!scale () in
  List.iter
    (fun (update_pct, rows) ->
      Table.print
        ~title:
          (Printf.sprintf
             "Figure 8: HashMap throughput (Mops/s), %d%% updates / %d%% \
              searches"
             update_pct (100 - update_pct))
        ~header:(thread_header !scale)
        (List.map (fun (name, pts) -> (name, mops_cells pts)) rows))
    groups;
  (* The throughput series (one per system x mix, indexed by the thread
     sweep) summarise what the per-point objects carry in full. *)
  let series =
    Obs.Json.Obj
      (List.concat_map
         (fun (update_pct, rows) ->
           List.map
             (fun (name, pts) ->
               ( Printf.sprintf "%s/upd%d" name update_pct,
                 Obs.Json.List
                   (List.map
                      (fun pt -> Obs.Json.Float (Experiments.point_mops pt))
                      pts) ))
             rows)
         groups)
  in
  collect
    (Obs.Run.experiment "fig8" ~params:(scale_params ())
       ~extra:[ ("throughput_series_mops", series) ]
       (List.concat_map
          (fun (_, rows) -> List.concat_map snd rows)
          groups))

let run_fig9 () =
  let rows = Experiments.fig9_points ~scale:!scale () in
  Table.print ~title:"Figure 9: Queue throughput (Mops/s), 1:1 enq/deq"
    ~header:(thread_header !scale)
    (List.map (fun (name, pts) -> (name, mops_cells pts)) rows);
  let series =
    Obs.Json.Obj
      (List.map
         (fun (name, pts) ->
           ( name,
             Obs.Json.List
               (List.map
                  (fun pt -> Obs.Json.Float (Experiments.point_mops pt))
                  pts) ))
         rows)
  in
  collect
    (Obs.Run.experiment "fig9" ~params:(scale_params ())
       ~extra:[ ("throughput_series_mops", series) ]
       (List.concat_map snd rows))

let run_fig10 () =
  let rows = Experiments.fig10_points ~scale:!scale () in
  let base =
    match rows with
    | (_, cells) :: _ ->
        List.map (fun (w, pt) -> (w, Experiments.point_mops pt)) cells
    | [] -> []
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Figure 10: overhead analysis at %d threads (throughput normalised \
          to Transient<DRAM>)"
         !scale.Experiments.fig10_threads)
    ~header:[ "config:"; "Queue"; "HashMap-RI"; "HashMap-WI" ]
    (List.map
       (fun (cname, cells) ->
         ( cname,
           List.map
             (fun (wname, pt) ->
               Table.fmt_ratio
                 (Experiments.point_mops pt /. List.assoc wname base))
             cells ))
       rows);
  collect
    (Obs.Run.experiment "fig10" ~params:(scale_params ())
       (List.concat_map
          (fun (cname, cells) ->
            List.map
              (fun (wname, pt) ->
                {
                  pt with
                  Obs.Run.label = Printf.sprintf "%s/%s" cname wname;
                  params =
                    pt.Obs.Run.params
                    @ [
                        ("config", Obs.Json.String cname);
                        ("workload", Obs.Json.String wname);
                      ];
                })
              cells)
          rows))

let run_fig11 () =
  let base, sweep = Experiments.fig11_points ~scale:!scale () in
  let base_mops = Experiments.point_mops base in
  Table.print
    ~title:
      "Figure 11: checkpoint-period sweep (HashMap write-intensive; \
       normalised throughput and measured effective period)"
    ~header:[ "period"; "norm. throughput"; "effective period" ]
    (List.map
       (fun (period_ns, pt) ->
         let eff = Experiments.point_eff pt in
         ( Printf.sprintf "%.0f us" (period_ns /. 1e3),
           [
             Table.fmt_ratio (Experiments.point_mops pt /. base_mops);
             (if Float.is_nan eff then "-"
              else Printf.sprintf "%.0f us" (eff /. 1e3));
           ] ))
       sweep);
  collect
    (Obs.Run.experiment "fig11" ~params:(scale_params ())
       ({ base with Obs.Run.label = "baseline/" ^ base.Obs.Run.label }
       :: List.map
            (fun (period_ns, pt) ->
              {
                pt with
                Obs.Run.params =
                  pt.Obs.Run.params
                  @ [ ("period_ns", Obs.Json.Float period_ns) ];
              })
            sweep))

let run_fig12 () =
  let pts = Experiments.fig12_points ~scale:!scale () in
  Table.print
    ~title:
      (Printf.sprintf
         "Figure 12: recovery time vs HashMap size (%d recovery threads)"
         !scale.Experiments.recovery_threads)
    ~header:[ "buckets"; "recovery (ms)"; "registry entries"; "rolled back" ]
    (List.map
       (fun pt ->
         ( pt.Obs.Run.label,
           [
             Table.fmt_ms (Experiments.point_extra_float pt "duration_ns");
             string_of_int (Experiments.point_extra_int pt "scanned");
             string_of_int (Experiments.point_extra_int pt "rolled_back");
           ] ))
       pts);
  collect (Obs.Run.experiment "fig12" ~params:(scale_params ()) pts)

let run_fig13 () =
  Table.print
    ~title:
      "Figure 13: compute-intensive applications (execution time normalised \
       to Transient<DRAM>; last row = section 5.3's naive RP placement)"
    ~header:[ "config:"; "Dedup"; "Swaptions"; "MatMul"; "LR" ]
    (App_experiments.fig13 ~scale:!app_scale ())

let run_fig14 () =
  Table.print
    ~title:"Figure 14: KV store under YCSB (Kops/s)"
    ~header:[ "config:"; "read-intensive"; "balanced"; "write-intensive" ]
    (App_experiments.fig14 ~scale:!app_scale ())

let run_tab2 () =
  let show name trace =
    let cells =
      List.map
        (fun v ->
          Fmt.str "%a" Analysis.Idempotence.pp_classification
            (Analysis.Idempotence.classify trace v))
        [ "x"; "y" ]
    in
    ( name,
      cells
      @ [
          (if Analysis.Idempotence.idempotent trace then "idempotent"
           else "not idempotent");
        ] )
  in
  Table.print
    ~title:"Table 2: RAW/WAR dependencies and idempotence (analysis demo)"
    ~header:[ "sequence"; "x"; "y"; "verdict" ]
    [
      show "x=5; y=x (RAW)" Analysis.Idempotence.table2_raw;
      show "y=x; x=8 (WAR)" Analysis.Idempotence.table2_war;
    ]

let run_tab3 () =
  match Loc_report.rows () with
  | [] ->
      print_endline
        "Table 3: sources not found (run from the repository root to count \
         instrumentation lines)"
  | rows ->
      Table.print
        ~title:
          "Table 3: ResPCT instrumentation lines in the ported applications"
        ~header:[ "application"; "instrumented LoC"; "total LoC"; "%" ]
        rows

(* ------------------------------------------------------------------ *)
(* Bechamel: wall-clock cost of miniature instances, one per figure. *)

let bechamel () =
  let open Bechamel in
  let tiny =
    {
      !scale with
      Experiments.sweep_threads = [ 4 ];
      duration_ns = 100_000.0;
      map_prefill = 500;
      buckets = 500;
      queue_prefill = 100;
      fig10_threads = 4;
      fig11_periods_ns = [ 64_000.0 ];
      fig12_buckets = [ 2_000 ];
    }
  in
  let tiny_apps =
    {
      !app_scale with
      App_experiments.matmul_n = 12;
      lr_points = 2_000;
      swaptions = 32;
      dedup_chunks = 200;
      kv_load = 300;
      kv_run = 900;
      kv_keys = 300;
      app_threads = 4;
    }
  in
  let stage f = Staged.stage (fun () -> ignore (f ())) in
  let tests =
    Test.make_grouped ~name:"respct-experiments"
      [
        Test.make ~name:"fig8-hashmap"
          (stage (fun () -> Experiments.fig8 ~scale:tiny ()));
        Test.make ~name:"fig9-queue"
          (stage (fun () -> Experiments.fig9 ~scale:tiny ()));
        Test.make ~name:"fig10-overheads"
          (stage (fun () -> Experiments.fig10 ~scale:tiny ()));
        Test.make ~name:"fig11-period-sweep"
          (stage (fun () -> Experiments.fig11 ~scale:tiny ()));
        Test.make ~name:"fig12-recovery"
          (stage (fun () -> Experiments.fig12 ~scale:tiny ()));
        Test.make ~name:"fig13-apps"
          (stage (fun () -> App_experiments.fig13 ~scale:tiny_apps ()));
        Test.make ~name:"fig14-kvstore"
          (stage (fun () -> App_experiments.fig14 ~scale:tiny_apps ()));
        Test.make ~name:"tab2-idempotence"
          (stage (fun () ->
               Analysis.Idempotence.idempotent Analysis.Idempotence.table2_war));
        Test.make ~name:"tab3-loc" (stage (fun () -> Loc_report.rows ()));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:10 ~quota:(Time.second 0.5) ~kde:(Some 5) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline
    "\n== Bechamel: wall-clock cost of one miniature run per experiment ==";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> Printf.printf "%-45s %12.3f ms/run\n" name (est /. 1e6)
      | Some [] | None -> Printf.printf "%-45s (no estimate)\n" name)
    results

let all_experiments =
  [
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("fig10", run_fig10);
    ("fig11", run_fig11);
    ("fig12", run_fig12);
    ("fig13", run_fig13);
    ("fig14", run_fig14);
    ("tab2", run_tab2);
    ("tab3", run_tab3);
    ("bechamel", bechamel);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse sel = function
    | [] -> List.rev sel
    | "--scale" :: s :: rest ->
        scale := Experiments.scale_of_string s;
        (app_scale :=
           match s with
           | "paper" -> App_experiments.paper
           | _ -> App_experiments.small);
        parse sel rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse sel rest
    | "all" :: rest -> parse (List.rev_map fst all_experiments @ sel) rest
    | name :: rest when List.mem_assoc name all_experiments ->
        parse (name :: sel) rest
    | name :: _ ->
        Printf.eprintf
          "unknown experiment %S; known: %s all --scale --json\n" name
          (String.concat " " (List.map fst all_experiments));
        exit 2
  in
  let selected = parse [] args in
  let selected =
    if selected = [] then List.map fst all_experiments else selected
  in
  (* Fail on an unwritable sink now, not after minutes of experiments. *)
  (match !json_path with
  | None -> ()
  | Some path -> (
      try close_out (open_out path)
      with Sys_error msg ->
        Printf.eprintf "cannot write --json sink: %s\n" msg;
        exit 2));
  Printf.printf
    "ResPCT evaluation harness — scale=%s (virtual-time results; see \
     EXPERIMENTS.md)\n"
    !scale.Experiments.label;
  List.iter
    (fun name ->
      let t0 = Unix.gettimeofday () in
      (List.assoc name all_experiments) ();
      Printf.printf "[%s done in %.1fs wall]\n%!" name
        (Unix.gettimeofday () -. t0))
    selected;
  match !json_path with
  | None -> ()
  | Some path ->
      Obs.Json.to_file path
        (Obs.Run.document
           ~meta:[ ("scale", Obs.Json.String !scale.Experiments.label) ]
           (List.rev !json_acc));
      Printf.printf "[structured results written to %s]\n%!" path
