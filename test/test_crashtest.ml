(* Tests for the crash explorer itself: that it passes correct systems,
   that it catches a deliberately planted persistence bug with a shrunk
   replayable counterexample, that the word-granular ablation breaks
   exactly the PCSO-reliant systems, that ResPCT recovery is idempotent
   under crashes *during* recovery, and that the explorer's Memsys
   subscribers never leak past a world's teardown. *)

module Memsys = Simnvm.Memsys
module Scheduler = Simsched.Scheduler
module Env = Simsched.Env
module Crashpoint = Crashtest.Crashpoint
module Explore = Crashtest.Explore
module Scenarios = Crashtest.Scenarios
module Shrink = Crashtest.Shrink
module Schedule = Crashtest.Schedule
module Workmix = Crashtest.Workmix

let scenario_of id ~pcso ~n_ops =
  match Scenarios.find id with
  | Some e -> e.Scenarios.build ~sched_seed:1 ~mem_seed:1 ~pcso ~n_ops
  | None -> Alcotest.failf "unknown scenario %s" id

(* ------------------------------------------------------------------ *)
(* Workmix: seeded generators are deterministic and their model prefixes
   line up. *)

let test_workmix_deterministic () =
  let a = Workmix.map_ops ~seed:7 ~n:40 () in
  let b = Workmix.map_ops ~seed:7 ~n:40 () in
  Alcotest.(check bool) "same seed, same map mix" true (a = b);
  Alcotest.(check bool)
    "different seed, different mix" true
    (a <> Workmix.map_ops ~seed:8 ~n:40 ());
  let states = Workmix.map_states a in
  Alcotest.(check int) "n+1 prefix states" 41 (Array.length states);
  Alcotest.(check (list (pair int int))) "empty start" [] states.(0);
  let q = Workmix.queue_ops ~seed:7 ~n:40 () in
  Alcotest.(check bool)
    "same seed, same queue mix" true
    (q = Workmix.queue_ops ~seed:7 ~n:40 ());
  Alcotest.(check int)
    "queue prefix states" 41
    (Array.length (Workmix.queue_states q))

(* ------------------------------------------------------------------ *)
(* Correct systems survive the full crash matrix (small worlds). *)

let test_correct_systems_pass () =
  List.iter
    (fun id ->
      let o = Explore.explore (scenario_of id ~pcso:true ~n_ops:6) in
      Alcotest.(check int)
        (id ^ " boundaries > 0 sanity")
        0
        (if o.Explore.boundaries > 0 then 0 else 1);
      Alcotest.(check int) (id ^ " violations") 0 (List.length o.Explore.failures))
    [ "respct-map"; "respct-queue"; "clobber-map"; "soft-map"; "friedman-queue" ]

(* ------------------------------------------------------------------ *)
(* The planted mutant: an append log that skips [add_modified] for every
   third word must be caught, shrink to a replayable counterexample, and
   replay. *)

let test_mutant_caught_and_shrunk () =
  let rebuild ~n_ops =
    Scenarios.respct_raw ~mutant:true ~sched_seed:1 ~mem_seed:1 ~pcso:true
      ~n_ops ()
  in
  (* 18 ops so the run crosses several checkpoints: the oracle can only
     see the missing [add_modified] once a checkpoint that should have
     flushed the word has completed. *)
  let o = Explore.explore ~stop_at_first_failure:true (rebuild ~n_ops:18) in
  match o.Explore.failures with
  | [] -> Alcotest.fail "mutant respct-raw scenario was not caught"
  | f :: _ ->
      let c = Shrink.minimize ~rebuild ~n_ops:18 f in
      Alcotest.(check bool) "shrunk op count <= original" true (c.Shrink.n_ops <= 18);
      Alcotest.(check bool)
        "shrunk crash index <= original" true
        (c.Shrink.crash_index <= f.Explore.crash_index);
      (match Shrink.replay c ~rebuild with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "shrunk counterexample does not reproduce");
      (* The printed replay line round-trips through the CLI's variant
         syntax. *)
      let s = Crashtest.Report.variant_to_string c.Shrink.variant in
      Alcotest.(check bool)
        "variant round-trips" true
        (Crashtest.Report.variant_of_string s = Ok c.Shrink.variant)

let test_unmutated_raw_passes () =
  let sc =
    Scenarios.respct_raw ~sched_seed:1 ~mem_seed:1 ~pcso:true ~n_ops:9 ()
  in
  let o = Explore.explore sc in
  Alcotest.(check int) "no violations" 0 (List.length o.Explore.failures)

(* ------------------------------------------------------------------ *)
(* Ablation asymmetry: word-granular write-back must break the
   InCLL-based systems and leave the explicitly-flushing ones passing. *)

let test_ablation_breaks_incll () =
  List.iter
    (fun id ->
      let o =
        Explore.explore ~stop_at_first_failure:true
          (scenario_of id ~pcso:false ~n_ops:8)
      in
      Alcotest.(check bool)
        (id ^ " breaks under word-granular write-back")
        true
        (o.Explore.failures <> []))
    [ "respct-map"; "quadra-map"; "quadra-queue" ]

let test_ablation_spares_explicit_flushers () =
  List.iter
    (fun id ->
      let o = Explore.explore (scenario_of id ~pcso:false ~n_ops:6) in
      Alcotest.(check int)
        (id ^ " holds under word-granular write-back")
        0
        (List.length o.Explore.failures))
    [ "clobber-map"; "clobber-queue"; "soft-map"; "friedman-queue" ]

(* ------------------------------------------------------------------ *)
(* Recovery idempotence: crash ResPCT recovery at every persist-event
   boundary of the recovery itself; re-running recovery must produce a
   byte-identical persistent image and the same rolled-back report. *)

let respct_world ~n_ops =
  let mem = Memsys.create (Scenarios.mem_cfg ~mem_seed:1 ~pcso:true) in
  let sched = Scheduler.create ~seed:1 () in
  let env = Env.make mem sched in
  let rt = Respct.Runtime.create ~cfg:Scenarios.rt_cfg env in
  let finished = ref false in
  let period = Scenarios.rt_cfg.Respct.Runtime.period_ns in
  ignore
    (Scheduler.spawn ~name:"ckpt" sched (fun () ->
         let rec loop at =
           Scheduler.sleep_until sched at;
           if not !finished then begin
             Respct.Runtime.run_checkpoint rt ~on_flushed:(fun _ -> ());
             loop (at +. period)
           end
         in
         loop period));
  ignore
    (Respct.Runtime.spawn rt ~slot:0 (fun _ctx ->
         let m = Pds.Hashmap_respct.create rt ~slot:0 ~buckets:8 in
         List.iter
           (fun op ->
             (match op with
             | Workmix.Insert (key, value) ->
                 ignore (Pds.Hashmap_respct.insert m ~slot:0 ~key ~value)
             | Workmix.Remove key ->
                 ignore (Pds.Hashmap_respct.remove m ~slot:0 ~key)
             | Workmix.Search key ->
                 ignore (Pds.Hashmap_respct.search m ~slot:0 ~key));
             Respct.Runtime.rp rt ~slot:0 1)
           (Gen_common.map_ops ~seed:5 ~n:n_ops ());
         finished := true));
  let run () =
    match Scheduler.run sched with
    | Scheduler.Completed | Scheduler.Crash_interrupt _ -> ()
  in
  (mem, rt, run)

let count_recovery_boundaries mem ~layout =
  let nvm_words = (Memsys.config mem).Memsys.nvm_words in
  let n = ref 0 in
  let sub =
    Memsys.subscribe mem (fun ev ->
        if Crashpoint.persist_event ~nvm_words ev then incr n)
  in
  let rep =
    Fun.protect
      ~finally:(fun () -> Memsys.unsubscribe mem sub)
      (fun () -> Respct.Recovery.run ~layout mem)
  in
  (!n, rep)

let interrupt_recovery_at mem ~layout j =
  let nvm_words = (Memsys.config mem).Memsys.nvm_words in
  let n = ref 0 in
  let sub =
    Memsys.subscribe mem (fun ev ->
        if Crashpoint.persist_event ~nvm_words ev then begin
          if !n = j then raise Crashpoint.Crash_now;
          incr n
        end)
  in
  Fun.protect
    ~finally:(fun () -> Memsys.unsubscribe mem sub)
    (fun () ->
      match Respct.Recovery.run ~layout mem with
      | _ -> Alcotest.failf "recovery finished before boundary %d" j
      | exception Crashpoint.Crash_now -> ())

let test_recovery_idempotent () =
  (* Pilot the world once to learn its boundary count, then pick a crash
     point deep enough that several epochs and rollbacks are in play. *)
  let mem, _rt, run = respct_world ~n_ops:12 in
  let boundaries, _ = Crashpoint.pilot mem ~completed:(fun () -> 0) run in
  Alcotest.(check bool) "world persists something" true (boundaries > 10);
  let crash_index = boundaries * 2 / 3 in
  let mem, rt, run = respct_world ~n_ops:12 in
  (match Crashpoint.run_to mem ~crash_index run with
  | `Crashed -> ()
  | `Completed -> Alcotest.fail "crash boundary never reached");
  Memsys.crash mem;
  let layout = Respct.Runtime.layout rt in
  let post_crash = Memsys.image mem in
  (* Reference: uninterrupted recovery. *)
  let rb, rep_ref = count_recovery_boundaries mem ~layout in
  let image_ref = Memsys.image mem in
  let cells_ref = List.sort compare rep_ref.Respct.Recovery.rolled_back in
  Alcotest.(check bool) "recovery persists something" true (rb > 0);
  (* Crash recovery at each of its own boundaries and re-run. *)
  for j = 0 to rb - 1 do
    Memsys.reset_to_image mem post_crash;
    interrupt_recovery_at mem ~layout j;
    Memsys.crash mem;
    let rep = Respct.Recovery.run ~layout mem in
    Alcotest.(check bool)
      (Printf.sprintf "image identical after crash@%d + re-run" j)
      true
      (Memsys.image mem = image_ref);
    Alcotest.(check int)
      (Printf.sprintf "failed epoch stable after crash@%d" j)
      rep_ref.Respct.Recovery.failed_epoch rep.Respct.Recovery.failed_epoch;
    Alcotest.(check bool)
      (Printf.sprintf "rolled-back cells identical after crash@%d" j)
      true
      (List.sort compare rep.Respct.Recovery.rolled_back = cells_ref)
  done

(* ------------------------------------------------------------------ *)
(* Subscriber hygiene: the explorer's counting subscribers must detach on
   every exit path — completion, crash, and exceptions out of the world. *)

let test_subscribers_detach () =
  let sc = scenario_of "respct-map" ~pcso:true ~n_ops:6 in
  let inst = sc.Explore.make ~n_ops:6 in
  let before = Memsys.subscriber_count inst.Explore.mem in
  let boundaries, _ =
    Crashpoint.pilot inst.Explore.mem ~completed:inst.Explore.completed
      inst.Explore.run
  in
  Alcotest.(check int) "pilot detaches" before
    (Memsys.subscriber_count inst.Explore.mem);
  let inst2 = sc.Explore.make ~n_ops:6 in
  let before2 = Memsys.subscriber_count inst2.Explore.mem in
  (match
     Crashpoint.run_to inst2.Explore.mem ~crash_index:(boundaries / 2)
       inst2.Explore.run
   with
  | `Crashed -> ()
  | `Completed -> Alcotest.fail "expected a crash");
  Alcotest.(check int) "crashed run detaches" before2
    (Memsys.subscriber_count inst2.Explore.mem)

let test_subscribers_detach_on_raise () =
  let mem = Memsys.create (Scenarios.mem_cfg ~mem_seed:1 ~pcso:true) in
  let before = Memsys.subscriber_count mem in
  (match
     Crashpoint.pilot mem ~completed:(fun () -> 0) (fun () -> failwith "boom")
   with
  | _ -> Alcotest.fail "pilot swallowed the exception"
  | exception Failure _ -> ());
  Alcotest.(check int) "pilot detaches on raise" before
    (Memsys.subscriber_count mem);
  (match
     Crashpoint.run_to mem ~crash_index:0 (fun () -> failwith "boom")
   with
  | _ -> Alcotest.fail "run_to swallowed the exception"
  | exception Failure _ -> ());
  Alcotest.(check int) "run_to detaches on raise" before
    (Memsys.subscriber_count mem)

(* ------------------------------------------------------------------ *)
(* Schedule sweeps stay clean on the shipped specs. *)

let test_schedule_sweeps_clean () =
  List.iter
    (fun spec ->
      let failures =
        Schedule.sweep spec ~seeds:[ 1 ] ~delays:[ 400.0 ] ~stride:9
      in
      Alcotest.(check int)
        (spec.Schedule.name ^ " sweep failures")
        0 (List.length failures))
    Schedule.all_specs

(* ------------------------------------------------------------------ *)
(* Media faults: deterministic plans, the integrity oracle in both
   directions, and fault-seed-carrying counterexamples. *)

module Faultplan = Crashtest.Faultplan

let mk_dirty lineno mask =
  { Memsys.lineno; data = Array.init 8 (fun i -> (lineno * 100) + i); mask }

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_faultplan_deterministic () =
  let dirty = [ mk_dirty 3 0b1011; mk_dirty 7 0b1; mk_dirty 9 0b11000101 ] in
  List.iter
    (fun (seed, crash_index) ->
      let d () = Faultplan.derive ~seed ~crash_index ~line_words:8 dirty in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d crash %d replays" seed crash_index)
        true
        (d () = d ()))
    [ (7, 0); (7, 36); (23, 36); (23, 917) ];
  let plans =
    List.init 64 (fun i ->
        Faultplan.derive ~seed:7 ~crash_index:i ~line_words:8 dirty)
  in
  Alcotest.(check bool)
    "crash index varies the plan" true
    (List.exists (fun p -> p <> List.hd plans) plans)

let test_faultplan_well_formed () =
  let dirty = [ mk_dirty 3 0b1011; mk_dirty 7 0b1; mk_dirty 9 0b11000101 ] in
  let dirty_linenos = List.map (fun d -> d.Memsys.lineno) dirty in
  let dirty_addrs =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun off ->
            if d.Memsys.mask land (1 lsl off) <> 0 then
              Some ((d.Memsys.lineno * 8) + off)
            else None)
          (List.init 8 Fun.id))
      dirty
  in
  let check_op = function
    | Faultplan.Tear { lineno; keep } ->
        let dl = List.find (fun d -> d.Memsys.lineno = lineno) dirty in
        Alcotest.(check bool) "tear keeps dirty words only" true
          (keep land lnot dl.Memsys.mask = 0);
        Alcotest.(check bool)
          "tear is a strict non-empty subset" true
          (keep <> 0 && keep <> dl.Memsys.mask)
    | Faultplan.Bitflip { addr; bit } ->
        (* Flips land on in-flight (dirty) words only — a clean at-rest
           word decays via ECC-visible poison, never silently. *)
        Alcotest.(check bool)
          (Printf.sprintf "flip @%d hits a dirty word" addr)
          true
          (List.mem addr dirty_addrs);
        Alcotest.(check bool) "bit in range" true (bit >= 0 && bit < 62)
    | Faultplan.Poison { lineno } | Faultplan.Transient { lineno } ->
        Alcotest.(check bool) "targets a dirty line" true
          (List.mem lineno dirty_linenos)
  in
  for seed = 1 to 40 do
    List.iter check_op
      (Faultplan.derive ~seed ~crash_index:(seed * 3) ~line_words:8 dirty)
  done;
  (* With nothing dirty, the plan aims at the sealed metadata region and
     never tears. *)
  for seed = 1 to 40 do
    List.iter
      (function
        | Faultplan.Tear _ -> Alcotest.fail "tear without dirty lines"
        | Faultplan.Bitflip { addr; _ } ->
            Alcotest.(check bool) "flip in metadata region" true
              (addr >= 0 && addr < 16 * 8)
        | Faultplan.Poison { lineno } | Faultplan.Transient { lineno } ->
            Alcotest.(check bool) "line in metadata region" true
              (lineno >= 0 && lineno < 16))
      (Faultplan.derive ~seed ~crash_index:seed ~line_words:8 [])
  done

let test_integrity_scenarios_survive_faults () =
  List.iter
    (fun id ->
      let o =
        Explore.explore ~fault_seeds:[ 7 ]
          (scenario_of id ~pcso:true ~n_ops:5)
      in
      Alcotest.(check int)
        (id ^ " detects or repairs every injected fault")
        0
        (List.length o.Explore.failures))
    [ "respct-map-integrity"; "respct-queue-integrity" ]

let test_noverify_mutant_fault_counterexample () =
  (* The planted integrity mutant: identical world, but recovery skips
     verification. The fault dimension must catch it and hand back a
     counterexample that carries its fault seed through shrinking, replay
     and the printed CLI line. *)
  let rebuild ~n_ops = scenario_of "respct-map-noverify" ~pcso:true ~n_ops in
  let o =
    Explore.explore ~stop_at_first_failure:true ~fault_seeds:[ 7 ]
      (rebuild ~n_ops:6)
  in
  match o.Explore.failures with
  | [] -> Alcotest.fail "unverified recovery survived faulty media"
  | f :: _ -> (
      Alcotest.(check (option int))
        "failure records its fault seed" (Some 7) f.Explore.fault_seed;
      let c = Shrink.minimize ~fault_seeds:[ 7 ] ~rebuild ~n_ops:6 f in
      Alcotest.(check (option int))
        "counterexample carries the seed" (Some 7) c.Shrink.fault_seed;
      (match Shrink.replay c ~rebuild with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "fault counterexample does not replay");
      Alcotest.(check bool)
        "replay line names the fault seed" true
        (contains ~sub:"--fault-seed 7" (Crashtest.Report.replay_args c)))

(* ------------------------------------------------------------------ *)
(* Pipelined checkpointing: the async-epoch worlds hold under a small
   direct exploration, and two of the planted protocol mutants die with
   shrunk replayable counterexamples — a fast cross-section of what the
   full [crashmatrix --pipeline] sweep covers. *)

let test_pipeline_scenarios_hold () =
  List.iter
    (fun id ->
      let o = Explore.explore (scenario_of id ~pcso:true ~n_ops:6) in
      Alcotest.(check bool)
        (id ^ " boundaries > 0")
        true (o.Explore.boundaries > 0);
      Alcotest.(check int) (id ^ " violations") 0 (List.length o.Explore.failures))
    [ "respct-map-pipeline"; "respct-queue-pipeline"; "respct-map-pipeline-churn" ]

let test_pipeline_mutants_caught () =
  List.iter
    (fun (id, n) ->
      let rebuild ~n_ops = scenario_of id ~pcso:true ~n_ops in
      let o = Explore.explore ~stop_at_first_failure:true (rebuild ~n_ops:n) in
      match o.Explore.failures with
      | [] -> Alcotest.failf "%s survived exploration" id
      | f :: _ -> (
          let c = Shrink.minimize ~rebuild ~n_ops:n f in
          Alcotest.(check bool)
            (id ^ " shrunk op count <= original")
            true
            (c.Shrink.n_ops <= n);
          match Shrink.replay c ~rebuild with
          | Error _ -> ()
          | Ok () -> Alcotest.failf "%s counterexample does not replay" id))
    [
      (* the seal-before-walk mutant dies quickly on the random mix; the
         early-reclaim one needs the allocator-churn workload to force a
         same-epoch free -> overlapped-reuse window. *)
      ("respct-map-pipeline-mutant-earlyseal", 10);
      ("respct-map-pipeline-churn-mutant-earlyreclaim", 16);
    ]

(* ------------------------------------------------------------------ *)
(* IR corpus: statically inferred plans vs the explorer (the analysis
   subsystem's end-to-end gate). The inferred plan must survive
   exploration; the one-logging-site-stripped mutant must be rejected
   both statically (lint) and dynamically (shrunk, replayable crash
   counterexample). *)

let test_ir_plans_survive_and_mutants_die () =
  List.iter
    (fun (name, prog) ->
      let id = "ir-" ^ name in
      let v = Crashtest.Irscenarios.check_program ~n_ops:6 ~name:id prog in
      Alcotest.(check (list string))
        (name ^ ": inferred plan survives exploration")
        []
        (List.map
           (fun (f : Explore.failure) -> f.Explore.reason)
           v.Crashtest.Irscenarios.plan_failures);
      Alcotest.(check bool)
        (name ^ ": stripped mutant caught by the lint")
        true v.Crashtest.Irscenarios.mutant_caught_static;
      match v.Crashtest.Irscenarios.mutant_counterexample with
      | None ->
          Alcotest.failf "%s: stripped mutant survived dynamic exploration"
            name
      | Some c -> (
          let rebuild ~n_ops =
            match Crashtest.Irscenarios.find (id ^ "-striplog") with
            | Some build ->
                build ~sched_seed:5 ~mem_seed:7 ~pcso:true ~n_ops
            | None -> Alcotest.failf "%s-striplog not resolvable" id
          in
          match Shrink.replay c ~rebuild with
          | Error _ -> ()
          | Ok () ->
              Alcotest.failf "%s: mutant counterexample does not replay" name))
    Analysis.Corpus.all

(* ------------------------------------------------------------------ *)
(* Filemem crash matrix: clean trials pass the durability oracles, the
   planted psync-elision mutant is caught, and counterexample strings
   round-trip through parse/replay. *)

let with_tmpdir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fmx-test-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () -> try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let fmx_params =
  {
    Crashtest.Filematrix.fseed = 42;
    fthreads = 2;
    fkeyspace = 96;
    fops = 200;
    fcrash_us = 120;
    fmutant = false;
  }

let test_filematrix_clean_passes () =
  with_tmpdir (fun dir ->
      let o = Crashtest.Filematrix.run_trial fmx_params ~dir in
      (match o.Crashtest.Filematrix.fo_violations with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "clean trial violated: %a"
            Crashtest.Filematrix.pp_violation v);
      Alcotest.(check bool) "at least one epoch sealed" true
        (o.Crashtest.Filematrix.fo_sealed_max >= 1);
      let o2 = Crashtest.Filematrix.run_trial fmx_params ~dir in
      Alcotest.(check string) "trials deterministic"
        o.Crashtest.Filematrix.fo_verdict o2.Crashtest.Filematrix.fo_verdict;
      Alcotest.(check int) "sealed epochs deterministic"
        o.Crashtest.Filematrix.fo_sealed_max
        o2.Crashtest.Filematrix.fo_sealed_max)

let test_filematrix_mutant_caught () =
  with_tmpdir (fun dir ->
      let p = { fmx_params with Crashtest.Filematrix.fmutant = true } in
      let o = Crashtest.Filematrix.run_trial p ~dir in
      (match o.Crashtest.Filematrix.fo_violations with
      | [] ->
          Alcotest.fail "Elide_psync mutant slipped past both oracles"
      | _ -> ());
      (* the shrunk counterexample must still violate and round-trip *)
      let q = Crashtest.Filematrix.shrink p ~dir in
      let oq = Crashtest.Filematrix.run_trial q ~dir in
      Alcotest.(check bool) "shrunk params still violate" true
        (oq.Crashtest.Filematrix.fo_violations <> []);
      let s = Crashtest.Filematrix.replay_string q in
      match Crashtest.Filematrix.replay s ~dir with
      | Error msg -> Alcotest.failf "replay %S failed: %s" s msg
      | Ok (q', o') ->
          Alcotest.(check bool) "replay parses back the same params" true
            (q' = q);
          Alcotest.(check bool) "replay reproduces the violation" true
            (o'.Crashtest.Filematrix.fo_violations <> []))

let test_filematrix_replay_string_roundtrip () =
  let s = Crashtest.Filematrix.replay_string fmx_params in
  (match Crashtest.Filematrix.parse_replay s with
  | Some p -> Alcotest.(check bool) "round-trips" true (p = fmx_params)
  | None -> Alcotest.failf "cannot parse own string %S" s);
  Alcotest.(check bool) "garbage rejected" true
    (Crashtest.Filematrix.parse_replay "seed=x;nope" = None)

let () =
  Alcotest.run "crashtest"
    [
      ( "workmix",
        [ Alcotest.test_case "deterministic" `Quick test_workmix_deterministic ]
      );
      ( "explorer",
        [
          Alcotest.test_case "correct systems pass" `Slow
            test_correct_systems_pass;
          Alcotest.test_case "mutant caught + shrunk + replays" `Slow
            test_mutant_caught_and_shrunk;
          Alcotest.test_case "unmutated raw log passes" `Quick
            test_unmutated_raw_passes;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "breaks InCLL systems" `Slow
            test_ablation_breaks_incll;
          Alcotest.test_case "spares explicit flushers" `Slow
            test_ablation_spares_explicit_flushers;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "idempotent under mid-recovery crashes" `Slow
            test_recovery_idempotent;
        ] );
      ( "subscribers",
        [
          Alcotest.test_case "detach on completion and crash" `Quick
            test_subscribers_detach;
          Alcotest.test_case "detach when the world raises" `Quick
            test_subscribers_detach_on_raise;
        ] );
      ( "schedules",
        [ Alcotest.test_case "sweeps clean" `Slow test_schedule_sweeps_clean ]
      );
      ( "faults",
        [
          Alcotest.test_case "plans deterministic under a seed" `Quick
            test_faultplan_deterministic;
          Alcotest.test_case "plans well-formed" `Quick
            test_faultplan_well_formed;
          Alcotest.test_case "integrity scenarios survive faults" `Slow
            test_integrity_scenarios_survive_faults;
          Alcotest.test_case "noverify mutant fault counterexample" `Slow
            test_noverify_mutant_fault_counterexample;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "pipeline scenarios hold" `Slow
            test_pipeline_scenarios_hold;
          Alcotest.test_case "pipeline mutants caught + shrunk + replay" `Slow
            test_pipeline_mutants_caught;
        ] );
      ( "ir-corpus",
        [
          Alcotest.test_case "plans survive, stripped mutants die" `Slow
            test_ir_plans_survive_and_mutants_die;
        ] );
      ( "filematrix",
        [
          Alcotest.test_case "clean trial passes, deterministic" `Quick
            test_filematrix_clean_passes;
          Alcotest.test_case "mutant caught, shrunk, replays" `Slow
            test_filematrix_mutant_caught;
          Alcotest.test_case "replay string round-trips" `Quick
            test_filematrix_replay_string_roundtrip;
        ] );
    ]
