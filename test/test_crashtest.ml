(* Tests for the crash explorer itself: that it passes correct systems,
   that it catches a deliberately planted persistence bug with a shrunk
   replayable counterexample, that the word-granular ablation breaks
   exactly the PCSO-reliant systems, that ResPCT recovery is idempotent
   under crashes *during* recovery, and that the explorer's Memsys
   subscribers never leak past a world's teardown. *)

module Memsys = Simnvm.Memsys
module Scheduler = Simsched.Scheduler
module Env = Simsched.Env
module Crashpoint = Crashtest.Crashpoint
module Explore = Crashtest.Explore
module Scenarios = Crashtest.Scenarios
module Shrink = Crashtest.Shrink
module Schedule = Crashtest.Schedule
module Workmix = Crashtest.Workmix

let scenario_of id ~pcso ~n_ops =
  match Scenarios.find id with
  | Some e -> e.Scenarios.build ~sched_seed:1 ~mem_seed:1 ~pcso ~n_ops
  | None -> Alcotest.failf "unknown scenario %s" id

(* ------------------------------------------------------------------ *)
(* Workmix: seeded generators are deterministic and their model prefixes
   line up. *)

let test_workmix_deterministic () =
  let a = Workmix.map_ops ~seed:7 ~n:40 () in
  let b = Workmix.map_ops ~seed:7 ~n:40 () in
  Alcotest.(check bool) "same seed, same map mix" true (a = b);
  Alcotest.(check bool)
    "different seed, different mix" true
    (a <> Workmix.map_ops ~seed:8 ~n:40 ());
  let states = Workmix.map_states a in
  Alcotest.(check int) "n+1 prefix states" 41 (Array.length states);
  Alcotest.(check (list (pair int int))) "empty start" [] states.(0);
  let q = Workmix.queue_ops ~seed:7 ~n:40 () in
  Alcotest.(check bool)
    "same seed, same queue mix" true
    (q = Workmix.queue_ops ~seed:7 ~n:40 ());
  Alcotest.(check int)
    "queue prefix states" 41
    (Array.length (Workmix.queue_states q))

(* ------------------------------------------------------------------ *)
(* Correct systems survive the full crash matrix (small worlds). *)

let test_correct_systems_pass () =
  List.iter
    (fun id ->
      let o = Explore.explore (scenario_of id ~pcso:true ~n_ops:6) in
      Alcotest.(check int)
        (id ^ " boundaries > 0 sanity")
        0
        (if o.Explore.boundaries > 0 then 0 else 1);
      Alcotest.(check int) (id ^ " violations") 0 (List.length o.Explore.failures))
    [ "respct-map"; "respct-queue"; "clobber-map"; "soft-map"; "friedman-queue" ]

(* ------------------------------------------------------------------ *)
(* The planted mutant: an append log that skips [add_modified] for every
   third word must be caught, shrink to a replayable counterexample, and
   replay. *)

let test_mutant_caught_and_shrunk () =
  let rebuild ~n_ops =
    Scenarios.respct_raw ~mutant:true ~sched_seed:1 ~mem_seed:1 ~pcso:true
      ~n_ops ()
  in
  (* 18 ops so the run crosses several checkpoints: the oracle can only
     see the missing [add_modified] once a checkpoint that should have
     flushed the word has completed. *)
  let o = Explore.explore ~stop_at_first_failure:true (rebuild ~n_ops:18) in
  match o.Explore.failures with
  | [] -> Alcotest.fail "mutant respct-raw scenario was not caught"
  | f :: _ ->
      let c = Shrink.minimize ~rebuild ~n_ops:18 f in
      Alcotest.(check bool) "shrunk op count <= original" true (c.Shrink.n_ops <= 18);
      Alcotest.(check bool)
        "shrunk crash index <= original" true
        (c.Shrink.crash_index <= f.Explore.crash_index);
      (match Shrink.replay c ~rebuild with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "shrunk counterexample does not reproduce");
      (* The printed replay line round-trips through the CLI's variant
         syntax. *)
      let s = Crashtest.Report.variant_to_string c.Shrink.variant in
      Alcotest.(check bool)
        "variant round-trips" true
        (Crashtest.Report.variant_of_string s = Ok c.Shrink.variant)

let test_unmutated_raw_passes () =
  let sc =
    Scenarios.respct_raw ~sched_seed:1 ~mem_seed:1 ~pcso:true ~n_ops:9 ()
  in
  let o = Explore.explore sc in
  Alcotest.(check int) "no violations" 0 (List.length o.Explore.failures)

(* ------------------------------------------------------------------ *)
(* Ablation asymmetry: word-granular write-back must break the
   InCLL-based systems and leave the explicitly-flushing ones passing. *)

let test_ablation_breaks_incll () =
  List.iter
    (fun id ->
      let o =
        Explore.explore ~stop_at_first_failure:true
          (scenario_of id ~pcso:false ~n_ops:8)
      in
      Alcotest.(check bool)
        (id ^ " breaks under word-granular write-back")
        true
        (o.Explore.failures <> []))
    [ "respct-map"; "quadra-map"; "quadra-queue" ]

let test_ablation_spares_explicit_flushers () =
  List.iter
    (fun id ->
      let o = Explore.explore (scenario_of id ~pcso:false ~n_ops:6) in
      Alcotest.(check int)
        (id ^ " holds under word-granular write-back")
        0
        (List.length o.Explore.failures))
    [ "clobber-map"; "clobber-queue"; "soft-map"; "friedman-queue" ]

(* ------------------------------------------------------------------ *)
(* Recovery idempotence: crash ResPCT recovery at every persist-event
   boundary of the recovery itself; re-running recovery must produce a
   byte-identical persistent image and the same rolled-back report. *)

let respct_world ~n_ops =
  let mem = Memsys.create (Scenarios.mem_cfg ~mem_seed:1 ~pcso:true) in
  let sched = Scheduler.create ~seed:1 () in
  let env = Env.make mem sched in
  let rt = Respct.Runtime.create ~cfg:Scenarios.rt_cfg env in
  let finished = ref false in
  let period = Scenarios.rt_cfg.Respct.Runtime.period_ns in
  ignore
    (Scheduler.spawn ~name:"ckpt" sched (fun () ->
         let rec loop at =
           Scheduler.sleep_until sched at;
           if not !finished then begin
             Respct.Runtime.run_checkpoint rt ~on_flushed:(fun _ -> ());
             loop (at +. period)
           end
         in
         loop period));
  ignore
    (Respct.Runtime.spawn rt ~slot:0 (fun _ctx ->
         let m = Pds.Hashmap_respct.create rt ~slot:0 ~buckets:8 in
         List.iter
           (fun op ->
             (match op with
             | Workmix.Insert (key, value) ->
                 ignore (Pds.Hashmap_respct.insert m ~slot:0 ~key ~value)
             | Workmix.Remove key ->
                 ignore (Pds.Hashmap_respct.remove m ~slot:0 ~key)
             | Workmix.Search key ->
                 ignore (Pds.Hashmap_respct.search m ~slot:0 ~key));
             Respct.Runtime.rp rt ~slot:0 1)
           (Gen_common.map_ops ~seed:5 ~n:n_ops ());
         finished := true));
  let run () =
    match Scheduler.run sched with
    | Scheduler.Completed | Scheduler.Crash_interrupt _ -> ()
  in
  (mem, rt, run)

let count_recovery_boundaries mem ~layout =
  let nvm_words = (Memsys.config mem).Memsys.nvm_words in
  let n = ref 0 in
  let sub =
    Memsys.subscribe mem (fun ev ->
        if Crashpoint.persist_event ~nvm_words ev then incr n)
  in
  let rep =
    Fun.protect
      ~finally:(fun () -> Memsys.unsubscribe mem sub)
      (fun () -> Respct.Recovery.run ~layout mem)
  in
  (!n, rep)

let interrupt_recovery_at mem ~layout j =
  let nvm_words = (Memsys.config mem).Memsys.nvm_words in
  let n = ref 0 in
  let sub =
    Memsys.subscribe mem (fun ev ->
        if Crashpoint.persist_event ~nvm_words ev then begin
          if !n = j then raise Crashpoint.Crash_now;
          incr n
        end)
  in
  Fun.protect
    ~finally:(fun () -> Memsys.unsubscribe mem sub)
    (fun () ->
      match Respct.Recovery.run ~layout mem with
      | _ -> Alcotest.failf "recovery finished before boundary %d" j
      | exception Crashpoint.Crash_now -> ())

let test_recovery_idempotent () =
  (* Pilot the world once to learn its boundary count, then pick a crash
     point deep enough that several epochs and rollbacks are in play. *)
  let mem, _rt, run = respct_world ~n_ops:12 in
  let boundaries, _ = Crashpoint.pilot mem ~completed:(fun () -> 0) run in
  Alcotest.(check bool) "world persists something" true (boundaries > 10);
  let crash_index = boundaries * 2 / 3 in
  let mem, rt, run = respct_world ~n_ops:12 in
  (match Crashpoint.run_to mem ~crash_index run with
  | `Crashed -> ()
  | `Completed -> Alcotest.fail "crash boundary never reached");
  Memsys.crash mem;
  let layout = Respct.Runtime.layout rt in
  let post_crash = Memsys.image mem in
  (* Reference: uninterrupted recovery. *)
  let rb, rep_ref = count_recovery_boundaries mem ~layout in
  let image_ref = Memsys.image mem in
  let cells_ref = List.sort compare rep_ref.Respct.Recovery.rolled_back in
  Alcotest.(check bool) "recovery persists something" true (rb > 0);
  (* Crash recovery at each of its own boundaries and re-run. *)
  for j = 0 to rb - 1 do
    Memsys.reset_to_image mem post_crash;
    interrupt_recovery_at mem ~layout j;
    Memsys.crash mem;
    let rep = Respct.Recovery.run ~layout mem in
    Alcotest.(check bool)
      (Printf.sprintf "image identical after crash@%d + re-run" j)
      true
      (Memsys.image mem = image_ref);
    Alcotest.(check int)
      (Printf.sprintf "failed epoch stable after crash@%d" j)
      rep_ref.Respct.Recovery.failed_epoch rep.Respct.Recovery.failed_epoch;
    Alcotest.(check bool)
      (Printf.sprintf "rolled-back cells identical after crash@%d" j)
      true
      (List.sort compare rep.Respct.Recovery.rolled_back = cells_ref)
  done

(* ------------------------------------------------------------------ *)
(* Subscriber hygiene: the explorer's counting subscribers must detach on
   every exit path — completion, crash, and exceptions out of the world. *)

let test_subscribers_detach () =
  let sc = scenario_of "respct-map" ~pcso:true ~n_ops:6 in
  let inst = sc.Explore.make ~n_ops:6 in
  let before = Memsys.subscriber_count inst.Explore.mem in
  let boundaries, _ =
    Crashpoint.pilot inst.Explore.mem ~completed:inst.Explore.completed
      inst.Explore.run
  in
  Alcotest.(check int) "pilot detaches" before
    (Memsys.subscriber_count inst.Explore.mem);
  let inst2 = sc.Explore.make ~n_ops:6 in
  let before2 = Memsys.subscriber_count inst2.Explore.mem in
  (match
     Crashpoint.run_to inst2.Explore.mem ~crash_index:(boundaries / 2)
       inst2.Explore.run
   with
  | `Crashed -> ()
  | `Completed -> Alcotest.fail "expected a crash");
  Alcotest.(check int) "crashed run detaches" before2
    (Memsys.subscriber_count inst2.Explore.mem)

let test_subscribers_detach_on_raise () =
  let mem = Memsys.create (Scenarios.mem_cfg ~mem_seed:1 ~pcso:true) in
  let before = Memsys.subscriber_count mem in
  (match
     Crashpoint.pilot mem ~completed:(fun () -> 0) (fun () -> failwith "boom")
   with
  | _ -> Alcotest.fail "pilot swallowed the exception"
  | exception Failure _ -> ());
  Alcotest.(check int) "pilot detaches on raise" before
    (Memsys.subscriber_count mem);
  (match
     Crashpoint.run_to mem ~crash_index:0 (fun () -> failwith "boom")
   with
  | _ -> Alcotest.fail "run_to swallowed the exception"
  | exception Failure _ -> ());
  Alcotest.(check int) "run_to detaches on raise" before
    (Memsys.subscriber_count mem)

(* ------------------------------------------------------------------ *)
(* Schedule sweeps stay clean on the shipped specs. *)

let test_schedule_sweeps_clean () =
  List.iter
    (fun spec ->
      let failures =
        Schedule.sweep spec ~seeds:[ 1 ] ~delays:[ 400.0 ] ~stride:9
      in
      Alcotest.(check int)
        (spec.Schedule.name ^ " sweep failures")
        0 (List.length failures))
    Schedule.all_specs

let () =
  Alcotest.run "crashtest"
    [
      ( "workmix",
        [ Alcotest.test_case "deterministic" `Quick test_workmix_deterministic ]
      );
      ( "explorer",
        [
          Alcotest.test_case "correct systems pass" `Slow
            test_correct_systems_pass;
          Alcotest.test_case "mutant caught + shrunk + replays" `Slow
            test_mutant_caught_and_shrunk;
          Alcotest.test_case "unmutated raw log passes" `Quick
            test_unmutated_raw_passes;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "breaks InCLL systems" `Slow
            test_ablation_breaks_incll;
          Alcotest.test_case "spares explicit flushers" `Slow
            test_ablation_spares_explicit_flushers;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "idempotent under mid-recovery crashes" `Slow
            test_recovery_idempotent;
        ] );
      ( "subscribers",
        [
          Alcotest.test_case "detach on completion and crash" `Quick
            test_subscribers_detach;
          Alcotest.test_case "detach when the world raises" `Quick
            test_subscribers_detach_on_raise;
        ] );
      ( "schedules",
        [ Alcotest.test_case "sweeps clean" `Slow test_schedule_sweeps_clean ]
      );
    ]
