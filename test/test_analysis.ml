(* Tests for the analysis extensions: the idempotence/WAR rule of paper
   section 3.3.2 (Table 2) and the vector-clock race checker validating
   the race-freedom assumption of section 2.1. *)

open Analysis

let classification =
  Alcotest.testable Idempotence.pp_classification ( = )

let test_table2 () =
  (* x=5; y=x : both RAW, idempotent *)
  Alcotest.check classification "RAW x" Idempotence.Raw
    (Idempotence.classify Idempotence.table2_raw "x");
  Alcotest.check Alcotest.bool "RAW idempotent" true
    (Idempotence.idempotent Idempotence.table2_raw);
  (* y=x; x=8 : x is WAR, not idempotent *)
  Alcotest.check classification "WAR x" Idempotence.War
    (Idempotence.classify Idempotence.table2_war "x");
  Alcotest.check Alcotest.bool "WAR not idempotent" false
    (Idempotence.idempotent Idempotence.table2_war)

let test_classify_cases () =
  let open Idempotence in
  Alcotest.check classification "read-only" No_dependency
    (classify [ Read "a"; Read "a" ] "a");
  Alcotest.check classification "never accessed" No_dependency
    (classify [ Read "a" ] "b");
  Alcotest.check classification "write-only" Raw
    (classify [ Write "a" ] "a");
  Alcotest.check classification "write then read then write = RAW" Raw
    (classify [ Write "a"; Read "a"; Write "a" ] "a");
  Alcotest.check classification "reads of others don't matter" War
    (classify [ Read "b"; Read "a"; Write "b"; Write "a" ] "a")

let test_needs_logging_matches_paper_example () =
  (* The paper's x^p snippet between RPs: x is read then written in the
     loop (WAR -> InCLL); p is written once then only read (no logging). *)
  let open Idempotence in
  let trace =
    [
      Write "p";
      Read "p";
      Read "x";
      Write "x";
      Read "p";
      Read "x";
      Write "x";
    ]
  in
  Alcotest.(check (list string)) "only x needs logging" [ "x" ]
    (needs_logging trace)

(* ------------------------------------------------------------------ *)
(* Race checker *)

let test_locked_accesses_race_free () =
  let open Racecheck in
  let events =
    [
      Racq { thread = 1; lock = 0 };
      Rwrite { thread = 1; addr = 100 };
      Rrel { thread = 1; lock = 0 };
      Racq { thread = 2; lock = 0 };
      Rread { thread = 2; addr = 100 };
      Rwrite { thread = 2; addr = 100 };
      Rrel { thread = 2; lock = 0 };
    ]
  in
  Alcotest.check Alcotest.bool "race free" true (race_free events)

let test_unlocked_write_write_races () =
  let open Racecheck in
  let events =
    [
      Rwrite { thread = 1; addr = 100 };
      Rwrite { thread = 2; addr = 100 };
    ]
  in
  Alcotest.check Alcotest.bool "detected" false (race_free events);
  match check events with
  | [ { addr; first_thread; first_access; second_thread; second_access } ] ->
      Alcotest.check Alcotest.int "addr" 100 addr;
      Alcotest.check (Alcotest.pair Alcotest.int Alcotest.int) "threads" (1, 2)
        (first_thread, second_thread);
      Alcotest.check Alcotest.bool "write/write" true
        (first_access = Awrite && second_access = Awrite)
  | races -> Alcotest.failf "expected one race, got %d" (List.length races)

let test_read_write_race () =
  let open Racecheck in
  let events =
    [
      Racq { thread = 1; lock = 0 };
      Rread { thread = 1; addr = 7 };
      Rrel { thread = 1; lock = 0 };
      (* writer uses a different lock: still a race with the read *)
      Racq { thread = 2; lock = 9 };
      Rwrite { thread = 2; addr = 7 };
      Rrel { thread = 2; lock = 9 };
    ]
  in
  Alcotest.check Alcotest.bool "different locks do not order" false
    (race_free events)

let test_hb_transitivity () =
  let open Racecheck in
  (* T1 -> (lock A) -> T2 -> (lock B) -> T3: T3's write is ordered after
     T1's via the chain, no race. *)
  let events =
    [
      Rwrite { thread = 1; addr = 42 };
      Racq { thread = 1; lock = 1 };
      Rrel { thread = 1; lock = 1 };
      Racq { thread = 2; lock = 1 };
      Racq { thread = 2; lock = 2 };
      Rrel { thread = 2; lock = 2 };
      Rrel { thread = 2; lock = 1 };
      Racq { thread = 3; lock = 2 };
      Rwrite { thread = 3; addr = 42 };
      Rrel { thread = 3; lock = 2 };
    ]
  in
  Alcotest.check Alcotest.bool "transitive happens-before" true (race_free events)

let test_same_thread_never_races () =
  let open Racecheck in
  let events =
    [
      Rwrite { thread = 1; addr = 5 };
      Rread { thread = 1; addr = 5 };
      Rwrite { thread = 1; addr = 5 };
    ]
  in
  Alcotest.check Alcotest.bool "program order" true (race_free events)

let test_race_dedupe_and_count () =
  let open Racecheck in
  let t = create () in
  List.iter (push t)
    [
      Rwrite { thread = 1; addr = 100 };
      Rwrite { thread = 2; addr = 100 };
      Rwrite { thread = 1; addr = 100 };
      Rwrite { thread = 2; addr = 100 };
    ];
  Alcotest.check Alcotest.int "one deduped report" 1 (List.length (races t));
  Alcotest.check Alcotest.int "race_count keeps every detection" 3
    (race_count t)

(* ------------------------------------------------------------------ *)
(* IR and CFG *)

let stmt_v x = Ir.Var x
let stmt_i n = Ir.Int n
let set x e = Ir.Assign (x, e)

let one_thread ?(persistent = [ ("x", 0); ("y", 0) ])
    ?(transient = [ ("t", 0) ]) body =
  {
    Ir.pname = "t";
    persistent;
    transient;
    threads = [ { Ir.tname = "main"; body } ];
  }

let test_ir_check () =
  Alcotest.check Alcotest.bool "corpus well-formed" true
    (List.for_all
       (fun (_, prog) -> Ir.well_formed (prog ~iters:3))
       Corpus.all);
  let dup_rp = one_thread [ Ir.Rp 0; Ir.Rp 0 ] in
  Alcotest.check Alcotest.bool "duplicate rp rejected" false
    (Ir.well_formed dup_rp);
  let undeclared = one_thread [ set "z" (stmt_i 1) ] in
  Alcotest.check Alcotest.bool "undeclared var rejected" false
    (Ir.well_formed undeclared)

let test_cfg_shape () =
  let p = one_thread [ set "x" (stmt_i 1); Ir.Rp 0; set "y" (stmt_v "x") ] in
  let cfg = Ir.cfg_of_thread (List.hd p.Ir.threads) in
  (* entry, 3 statements, exit *)
  Alcotest.check Alcotest.int "node count" 5 (Array.length cfg.Ir.nodes);
  let loop =
    Ir.cfg_of_thread
      {
        Ir.tname = "l";
        body =
          [
            Ir.While (Ir.Binop (Ir.Lt, stmt_v "t", stmt_i 3),
                      [ set "t" (Ir.Binop (Ir.Add, stmt_v "t", stmt_i 1)) ]);
          ];
      }
  in
  let branch =
    Array.to_list loop.Ir.nodes
    |> List.find (fun n ->
           match n.Ir.kind with Ir.Node_branch _ -> true | _ -> false)
  in
  Alcotest.check Alcotest.bool "loop back-edge reaches branch" true
    (List.exists
       (fun n -> List.mem branch.Ir.id n.Ir.succ && n.Ir.id > branch.Ir.id)
       (Array.to_list loop.Ir.nodes))

let test_dataflow_lattices () =
  let module VMay = Dataflow.MaySet (Dataflow.Vars) in
  let module VMust = Dataflow.MustSet (Dataflow.Vars) in
  let s = Dataflow.Vars.of_list [ "a"; "b" ] in
  Alcotest.check Alcotest.bool "may join is union" true
    (Dataflow.Vars.equal
       (VMay.join s (Dataflow.Vars.singleton "c"))
       (Dataflow.Vars.add "c" s));
  Alcotest.check Alcotest.bool "must bottom absorbs" true
    (VMust.equal (VMust.join VMust.bottom (VMust.Known s)) (VMust.Known s));
  Alcotest.check Alcotest.bool "must join is intersection" true
    (VMust.equal
       (VMust.join (VMust.Known s)
          (VMust.Known (Dataflow.Vars.singleton "a")))
       (VMust.Known (Dataflow.Vars.singleton "a")));
  Alcotest.check Alcotest.bool "top membership" true
    (VMust.mem "anything" VMust.bottom)

(* ------------------------------------------------------------------ *)
(* Warstatic *)

let war_of p =
  List.fold_left
    (fun acc (s : Warstatic.summary) -> Dataflow.Vars.union acc s.Warstatic.war)
    Dataflow.Vars.empty (Warstatic.analyse p)

let test_warstatic_straightline () =
  (* Table 2: y=x; x=8 makes x WAR; x=5; y=x leaves both RAW. *)
  let war = one_thread [ set "y" (stmt_v "x"); set "x" (stmt_i 8) ] in
  Alcotest.check classification "WAR" Idempotence.War
    (Warstatic.classify war "x");
  let raw = one_thread [ set "x" (stmt_i 5); set "y" (stmt_v "x") ] in
  Alcotest.check classification "RAW" Idempotence.Raw
    (Warstatic.classify raw "x");
  Alcotest.check classification "y written-only" Idempotence.Raw
    (Warstatic.classify raw "y")

let test_warstatic_branch_may () =
  (* The read of x sits on one arm only: still may-WAR. *)
  let p =
    one_thread
      [
        Ir.If (stmt_v "t", [ set "t" (stmt_v "x") ], []);
        set "x" (stmt_i 1);
      ]
  in
  Alcotest.check Alcotest.bool "may-WAR across a branch" true
    (Dataflow.Vars.mem "x" (war_of p))

let test_warstatic_rp_resets () =
  (* Read and write separated by a restart point: no WAR. *)
  let p = one_thread [ set "t" (stmt_v "x"); Ir.Rp 0; set "x" (stmt_i 1) ] in
  Alcotest.check Alcotest.bool "rp splits the region" false
    (Dataflow.Vars.mem "x" (war_of p));
  let q = one_thread [ set "t" (stmt_v "x"); set "x" (stmt_i 1) ] in
  Alcotest.check Alcotest.bool "same code without rp is WAR" true
    (Dataflow.Vars.mem "x" (war_of q))

(* ------------------------------------------------------------------ *)
(* Lockset *)

let test_lockset_diagnostics () =
  let bad_release = one_thread [ Ir.Release 0 ] in
  let s = List.hd (Lockset.analyse bad_release) in
  Alcotest.check Alcotest.int "release-not-acquired" 1
    (List.length s.Lockset.release_unheld);
  let leak = one_thread [ Ir.Acquire 0; set "x" (stmt_i 1) ] in
  let s = List.hd (Lockset.analyse leak) in
  Alcotest.check (Alcotest.list Alcotest.int) "leaked lock" [ 0 ]
    s.Lockset.leaked;
  let rp_locked = one_thread [ Ir.Acquire 0; Ir.Rp 0; Ir.Release 0 ] in
  let s = List.hd (Lockset.analyse rp_locked) in
  Alcotest.check Alcotest.int "rp in critical section" 1
    (List.length s.Lockset.rp_critical)

let two_threads b0 b1 =
  {
    Ir.pname = "t2";
    persistent = [ ("x", 0) ];
    transient = [];
    threads =
      [ { Ir.tname = "a"; body = b0 }; { Ir.tname = "b"; body = b1 } ];
  }

let test_lockset_races () =
  let unlocked =
    two_threads [ set "x" (stmt_i 1) ] [ set "x" (stmt_i 2) ]
  in
  (match Lockset.races unlocked with
  | [ c ] ->
      Alcotest.check Alcotest.bool "write-write candidate" true
        c.Lockset.rc_write_write
  | l -> Alcotest.failf "expected one candidate, got %d" (List.length l));
  let locked =
    two_threads
      [ Ir.Acquire 0; set "x" (stmt_i 1); Ir.Release 0 ]
      [ Ir.Acquire 0; set "x" (stmt_i 2); Ir.Release 0 ]
  in
  Alcotest.check Alcotest.int "consistently locked: none" 0
    (List.length (Lockset.races locked))

(* ------------------------------------------------------------------ *)
(* Placement and lint over the corpus *)

let vars_l s = Dataflow.Vars.elements s

let test_placement_corpus () =
  let p, plan = Placement.infer (Corpus.bank_transfer ~iters:3) in
  Alcotest.check (Alcotest.list Alcotest.string) "bank logs all accounts"
    [ "acct0"; "acct1"; "acct2" ]
    (vars_l plan.Placement.log);
  Alcotest.check (Alcotest.list Alcotest.string) "bank tracks nothing" []
    (vars_l plan.Placement.track);
  Alcotest.check Alcotest.int "one rp per teller loop" 2
    (List.length (Ir.rp_ids p));
  let q, qplan = Placement.infer (Corpus.kv_update ~iters:3) in
  Alcotest.check (Alcotest.list Alcotest.string) "kv logs the WAR vars"
    [ "size"; "slot0"; "slot1" ]
    (vars_l qplan.Placement.log);
  Alcotest.check (Alcotest.list Alcotest.string) "kv tracks the journal"
    [ "journal" ]
    (vars_l qplan.Placement.track);
  Alcotest.check Alcotest.bool "instrumented programs stay well-formed" true
    (Ir.well_formed p && Ir.well_formed q)

let rules fs = List.map (fun (f : Lint.finding) -> f.Lint.rule) fs

let test_lint_clean_and_mutant () =
  List.iter
    (fun (name, prog) ->
      let p, plan = Placement.infer (prog ~iters:3) in
      Alcotest.check Alcotest.int (name ^ " lints clean") 0
        (List.length (Lint.run ~plan p));
      let stripped =
        match Dataflow.Vars.min_elt_opt plan.Placement.log with
        | Some v -> v
        | None -> Alcotest.fail "corpus plan must log something"
      in
      let mutant =
        { plan with Placement.log = Dataflow.Vars.remove stripped plan.Placement.log }
      in
      let fs = Lint.run ~plan:mutant p in
      Alcotest.check Alcotest.bool (name ^ " mutant flagged") true
        (List.mem Lint.War_missing_logging (rules fs)
        && Lint.errors fs <> []))
    Corpus.all

let test_lint_structural_rules () =
  let unreachable =
    one_thread [ Ir.Rp 0; Ir.If (stmt_i 0, [ Ir.Rp 1 ], []); set "x" (stmt_i 1) ]
  in
  Alcotest.check Alcotest.bool "unreachable rp" true
    (List.mem Lint.Unreachable_rp (rules (Lint.run unreachable)));
  let no_region = one_thread [ set "x" (stmt_i 1) ] in
  Alcotest.check Alcotest.bool "store outside restart region" true
    (List.mem Lint.Store_outside_region (rules (Lint.run no_region)))

(* ------------------------------------------------------------------ *)
(* Interpreter *)

let test_interp_kv () =
  let obs = Exec.interp (Corpus.kv_update ~iters:4) in
  Alcotest.check Alcotest.bool "completes" true obs.Exec.completed;
  let final v = List.assoc v obs.Exec.finals in
  (* i = 0,2 bump slot0 by 3; i = 1,3 bump slot1 by 5; size counts all. *)
  Alcotest.check Alcotest.int "slot0" 6 (final "slot0");
  Alcotest.check Alcotest.int "slot1" 10 (final "slot1");
  Alcotest.check Alcotest.int "size" 4 (final "size");
  Alcotest.check Alcotest.int "journal" 31 (final "journal")

(* ------------------------------------------------------------------ *)
(* Persistate: the persist-state lattice *)

let flush_prog ?persistent:(pv = [ ("a", 0); ("b", 0) ]) body =
  {
    Ir.pname = "fp";
    persistent = pv;
    transient = [ ("t", 0) ];
    threads = [ { Ir.tname = "main"; body } ];
  }

let summary_of ?lines ?crash_var p =
  Persistate.summarize ?crash_var (Persistate.create ?lines p)

let in_must s v = Dataflow.Vars.mem v s.Persistate.s_must_durable
let in_dirty s v = Dataflow.Vars.mem v s.Persistate.s_may_dirty

let test_persistate_lifecycle () =
  let s = summary_of (flush_prog [ set "a" (stmt_i 1) ]) in
  Alcotest.check Alcotest.bool "store leaves a dirty" true (in_dirty s "a");
  Alcotest.check Alcotest.bool "dirty is not durable" false (in_must s "a");
  Alcotest.check Alcotest.bool "never-written stays durable" true
    (in_must s "b");
  let s = summary_of (flush_prog [ set "a" (stmt_i 1); Ir.Pwb "a" ]) in
  Alcotest.check Alcotest.bool "pwb clears dirty" false (in_dirty s "a");
  Alcotest.check Alcotest.bool "unfenced pwb is not durable" false
    (in_must s "a");
  Alcotest.check Alcotest.bool "pwb leaves a pending" true
    (Dataflow.Vars.mem "a" s.Persistate.s_may_pending);
  let s =
    summary_of (flush_prog [ set "a" (stmt_i 1); Ir.Pwb "a"; Ir.Psync ])
  in
  Alcotest.check Alcotest.bool "pwb;psync is durable" true (in_must s "a")

let test_persistate_line_mates () =
  (* pwb is line-granular: flushing a also flushes its line-mate b *)
  let p =
    flush_prog
      [ set "a" (stmt_i 1); set "b" (stmt_i 2); Ir.Pwb "a"; Ir.Psync ]
  in
  let s = summary_of ~lines:(fun _ -> 0) p in
  Alcotest.check Alcotest.bool "a durable" true (in_must s "a");
  Alcotest.check Alcotest.bool "line-mate b durable too" true (in_must s "b");
  (* default layout: separate lines, b stays dirty *)
  let s = summary_of p in
  Alcotest.check Alcotest.bool "separate line b stays dirty" true
    (in_dirty s "b");
  Alcotest.check Alcotest.bool "separate line b not durable" false
    (in_must s "b")

let test_persistate_branch_join () =
  (* one arm dirties a: the join keeps both lifecycle states *)
  let s =
    summary_of (flush_prog [ Ir.If (stmt_v "t", [ set "a" (stmt_i 1) ], []) ])
  in
  Alcotest.check Alcotest.bool "may-dirty across the branch" true
    (in_dirty s "a");
  Alcotest.check Alcotest.bool "not durable on every path" false
    (in_must s "a")

let test_persistate_multi_writer () =
  let p =
    {
      Ir.pname = "mw";
      persistent = [ ("a", 0) ];
      transient = [];
      threads =
        [
          { Ir.tname = "w0"; body = [ set "a" (stmt_i 1); Ir.Pwb "a"; Ir.Psync ] };
          { Ir.tname = "w1"; body = [ set "a" (stmt_i 2); Ir.Pwb "a"; Ir.Psync ] };
        ];
    }
  in
  let s = summary_of p in
  Alcotest.check Alcotest.bool "multi-writer demoted" true
    (Dataflow.Vars.mem "a" s.Persistate.s_multi_writer);
  Alcotest.check Alcotest.bool "no durable claim for a racing var" false
    (in_must s "a")

let test_persistate_crash_truncation () =
  (* the store to b sits after the crash: it never executes, so the
     crash summary may still claim b — while the normal-termination
     summary sees it dirty *)
  let p =
    flush_prog
      [
        set "a" (stmt_i 1);
        Ir.Pwb "a";
        Ir.Psync;
        set "t" (stmt_i 1);
        set "b" (stmt_i 1);
      ]
  in
  let s = summary_of ~crash_var:"t" p in
  Alcotest.check Alcotest.bool "a durable at crash" true (in_must s "a");
  Alcotest.check Alcotest.bool "post-crash store invisible" true
    (in_must s "b");
  let s = summary_of p in
  Alcotest.check Alcotest.bool "normal exit sees b dirty" true (in_dirty s "b")

(* ------------------------------------------------------------------ *)
(* Flushlint rules *)

let kinds fs = List.map (fun (f : Flushlint.finding) -> f.Flushlint.fl_kind) fs

let test_flushlint_rules () =
  let has k p = List.mem k (kinds (Flushlint.run p)) in
  Alcotest.check Alcotest.bool "missing-pwb-before-restart-point" true
    (has Flushlint.Missing_pwb_at_rp
       (flush_prog
          [ set "a" (stmt_i 1); Ir.Pwb "a"; Ir.Psync; set "b" (stmt_i 1); Ir.Rp 0 ]));
  Alcotest.check Alcotest.bool "missing-psync-before-dependent-publish" true
    (has Flushlint.Missing_psync_publish
       (flush_prog [ set "a" (stmt_i 1); Ir.Pwb "a"; set "b" (stmt_i 1) ]));
  Alcotest.check Alcotest.bool "redundant-pwb" true
    (has Flushlint.Redundant_pwb (flush_prog [ Ir.Pwb "a" ]));
  Alcotest.check Alcotest.bool "psync-with-no-pending" true
    (has Flushlint.Psync_no_pending
       (flush_prog [ set "a" (stmt_i 1); Ir.Psync ]));
  Alcotest.check Alcotest.bool "cross-line-torn-logging" true
    (has Flushlint.Torn_cross_line
       (flush_prog
          [
            set "a" (stmt_i 1);
            Ir.Pwb "a";
            Ir.Psync;
            set "a" (stmt_i 2);
            set "b" (stmt_i 1);
          ]));
  (* flush-free programs are out of scope, whatever their dirt *)
  Alcotest.check Alcotest.int "no flushes, no findings" 0
    (List.length (Flushlint.run (flush_prog [ set "a" (stmt_i 1); set "b" (stmt_i 1) ])))

let race_prog locked =
  let guard body =
    if locked then (Ir.Acquire 0 :: body) @ [ Ir.Release 0 ] else body
  in
  {
    Ir.pname = "race";
    persistent = [ ("x", 0) ];
    transient = [];
    threads =
      [
        { Ir.tname = "w"; body = guard [ set "x" (stmt_i 1) ] };
        { Ir.tname = "f"; body = guard [ Ir.Pwb "x"; Ir.Psync ] };
      ];
  }

let test_flushlint_race () =
  Alcotest.check Alcotest.bool "unlocked cross-thread flush races" true
    (List.mem Flushlint.Persist_order_race (kinds (Flushlint.run (race_prog false))));
  Alcotest.check Alcotest.bool "a common lock orders persist" false
    (List.mem Flushlint.Persist_order_race (kinds (Flushlint.run (race_prog true))))

let test_flushlint_wal_append () =
  let p = Corpus.wal_append ~iters:3 in
  Alcotest.check Alcotest.int "wal-append lints clean" 0
    (List.length (Flushlint.run p));
  let stripped = Flushlint.strip_psync p in
  let ks = kinds (Flushlint.run stripped) in
  Alcotest.check Alcotest.bool "strip-psync caught" true
    (List.mem Flushlint.Missing_psync_publish ks);
  Alcotest.check Alcotest.bool "strip-psync is error grade" true
    (List.exists Flushlint.is_error ks);
  let doubled = Flushlint.inject_redundant_pwb p in
  let ks = kinds (Flushlint.run doubled) in
  Alcotest.check Alcotest.bool "redundant-pwb caught" true
    (List.mem Flushlint.Redundant_pwb ks);
  Alcotest.check Alcotest.bool "redundant-pwb is warning grade" false
    (List.exists Flushlint.is_error ks)

let test_lint_flush_integration () =
  (* through the Placement + Lint front door, as the CLI runs it *)
  let lint_of prog =
    let p, plan = Placement.infer prog in
    Lint.run ~plan p
  in
  Alcotest.check Alcotest.int "wal-append clean end to end" 0
    (List.length (lint_of (Corpus.wal_append ~iters:3)));
  let fs = lint_of (Flushlint.strip_psync (Corpus.wal_append ~iters:3)) in
  Alcotest.check Alcotest.bool "strip-psync is a lint error" true
    (List.mem Lint.Flush_missing_psync_publish (rules fs) && Lint.errors fs <> []);
  let fs = lint_of (Flushlint.inject_redundant_pwb (Corpus.wal_append ~iters:3)) in
  Alcotest.check Alcotest.bool "redundant-pwb is a lint warning" true
    (List.mem Lint.Flush_redundant_pwb (rules fs) && Lint.errors fs = [])

let test_lint_deterministic () =
  let prog = Flushlint.strip_psync (Corpus.wal_append ~iters:3) in
  let once () =
    let p, plan = Placement.infer prog in
    let fs = Lint.run ~plan p in
    (fs, Obs.Json.to_string (Lint.to_json p fs))
  in
  let fs1, j1 = once () and fs2, j2 = once () in
  Alcotest.check Alcotest.bool "same findings" true (fs1 = fs2);
  Alcotest.(check string) "same bytes" j1 j2;
  Alcotest.check Alcotest.bool "at least two findings to order" true
    (List.length fs1 >= 2)

(* ------------------------------------------------------------------ *)
(* Pwb/Psync uniformity: well-formedness, both interpreters, round-trip *)

let test_flush_ir_uniformity () =
  Alcotest.check Alcotest.bool "flush corpus well-formed" true
    (List.for_all
       (fun (_, prog) -> Ir.well_formed (prog ~iters:3))
       Corpus.flush_corpus);
  Alcotest.check Alcotest.bool "pwb of transient rejected" false
    (Ir.well_formed (flush_prog [ Ir.Pwb "t" ]));
  Alcotest.check Alcotest.bool "bare psync accepted" true
    (Ir.well_formed (flush_prog [ Ir.Psync ]))

let test_wal_append_interp () =
  let obs = Exec.interp (Corpus.wal_append ~iters:4) in
  Alcotest.check Alcotest.bool "completes" true obs.Exec.completed;
  let final v = List.assoc v obs.Exec.finals in
  Alcotest.check Alcotest.int "payload" 31 (final "payload");
  Alcotest.check Alcotest.int "commit" 4 (final "commit")

let test_wal_append_run_mem () =
  let mem = Simnvm.Memsys.create Simnvm.Memsys.default_config in
  let lw = Simnvm.Memsys.default_config.Simnvm.Memsys.line_words in
  let addr_of = function
    | "payload" -> Some 0
    | "commit" -> Some lw
    | _ -> None
  in
  let o = Exec.run_mem ~mem ~addr_of (Corpus.wal_append ~iters:4) in
  Alcotest.check Alcotest.bool "run_mem completes" true o.Exec.mo_completed;
  (* every iteration ends pwb;psync — the image tracks the finals *)
  Alcotest.check Alcotest.int "payload persisted" 31
    (Simnvm.Memsys.persisted mem 0);
  Alcotest.check Alcotest.int "commit persisted" 4
    (Simnvm.Memsys.persisted mem lw)

let test_compile_ir_round_trip () =
  let demo = Litmus.Axcheck.demo in
  match
    Litmus.Axcheck.compile_ir ~layout:demo.Litmus.Prog.layout
      (Litmus.World.compile demo)
  with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok rt ->
      Alcotest.(check string)
        "compile_ir inverts World.compile"
        (Litmus.Prog.to_string demo)
        (Litmus.Prog.to_string rt)

(* ------------------------------------------------------------------ *)
(* Dynamic mutant confirmations *)

let test_strip_psync_dynamic () =
  (* the stripped WAL twin really loses data over the file-backed
     medium: pwbs mark lines pending but no psync ever copies them *)
  let run prog =
    let path = Filename.temp_file "axdyn" ".img" in
    let fm = Filemem.create Filemem.default_config ~path in
    let b = Filemem.backend fm in
    let halted =
      Litmus.World.drive ~sched_seed:1 ~load:b.Simnvm.Backend.load
        ~store:b.Simnvm.Backend.store ~pwb:b.Simnvm.Backend.pwb
        ~psync:b.Simnvm.Backend.psync prog
    in
    Filemem.crash fm;
    let persisted loc =
      Filemem.persisted fm (Litmus.World.addr_of_loc prog loc)
    in
    let r = List.map (fun l -> (l, persisted l)) (Litmus.Prog.locs prog) in
    Filemem.close fm;
    Sys.remove path;
    (halted, r)
  in
  let demo = Litmus.Axcheck.demo in
  let claims = Litmus.Axcheck.static_claims demo in
  Alcotest.check Alcotest.bool "claims to test" true
    (claims.Litmus.Axcheck.c_must_durable <> []);
  let halted, clean = run demo in
  Alcotest.check Alcotest.bool "demo crashes" true halted;
  Alcotest.check Alcotest.int "clean run persists payload" 7
    (List.assoc "payload" clean);
  Alcotest.check Alcotest.int "clean run persists commit" 1
    (List.assoc "commit" clean);
  let _, lost = run (Litmus.Axcheck.strip_psync demo) in
  Alcotest.check Alcotest.bool
    "stripped run loses a claimed location" true
    (List.exists
       (fun l -> List.assoc l lost = 0)
       claims.Litmus.Axcheck.c_must_durable)

let test_redundant_pwb_dynamic () =
  (* the injected duplicate pwb can never see a dirty line: the Memobs
     clean-pwb counter is the dynamic witness for the static warning *)
  let clean_pwbs prog =
    let mem = Simnvm.Memsys.create Simnvm.Memsys.default_config in
    let r = Obs.Metrics.create () in
    let _probe, _sub = Obs.Memobs.attach r mem in
    let lw = Simnvm.Memsys.default_config.Simnvm.Memsys.line_words in
    let addr_of = function
      | "payload" -> Some 0
      | "commit" -> Some lw
      | _ -> None
    in
    let o = Exec.run_mem ~mem ~addr_of prog in
    Alcotest.check Alcotest.bool "completes" true o.Exec.mo_completed;
    Obs.Metrics.value (Obs.Metrics.counter r "mem.pwbs.clean")
  in
  Alcotest.check Alcotest.int "baseline has no clean pwb" 0
    (clean_pwbs (Corpus.wal_append ~iters:4));
  Alcotest.check Alcotest.bool "mutant issues clean pwbs" true
    (clean_pwbs (Flushlint.inject_redundant_pwb (Corpus.wal_append ~iters:4)) > 0)

(* ------------------------------------------------------------------ *)
(* QCheck soundness: static analysis vs the interpreter *)

let merge a b =
  match (a, b) with
  | Idempotence.War, _ | _, Idempotence.War -> Idempotence.War
  | Idempotence.Raw, _ | _, Idempotence.Raw -> Idempotence.Raw
  | Idempotence.No_dependency, Idempotence.No_dependency ->
      Idempotence.No_dependency

let dynamic_classify obs v =
  List.fold_left
    (fun acc (_, segs) ->
      List.fold_left
        (fun acc seg -> merge acc (Idempotence.classify seg v))
        acc segs)
    Idempotence.No_dependency obs.Exec.segments

let straightline_exact =
  QCheck.Test.make ~count:1000 ~name:"straight-line static = Idempotence.classify"
    (Gen_common.arb_straightline_ir ~n:30 ())
    (fun seed ->
      let p = Gen_common.straightline_ir ~seed ~n:30 in
      let obs = Exec.interp p in
      if not obs.Exec.completed then
        QCheck.Test.fail_report "straight-line program did not complete";
      List.for_all
        (fun v -> Warstatic.classify p v = dynamic_classify obs v)
        (Ir.declared p))

let branchy_sound =
  QCheck.Test.make ~count:500
    ~name:"branchy: every dynamic WAR is flagged statically"
    (Gen_common.arb_branchy_ir ~n:14 ())
    (fun seed ->
      let p = Gen_common.branchy_ir ~seed ~n:14 () in
      let static_war = war_of p in
      List.for_all
        (fun sched_seed ->
          let obs = Exec.interp ~sched_seed p in
          (match obs.Exec.thread_error with
          | Some e -> QCheck.Test.fail_report e
          | None -> ());
          Dataflow.Vars.subset obs.Exec.war static_war)
        [ 0; 1; 2 ])

(* ------------------------------------------------------------------ *)
(* QCheck soundness: persist-state claims vs the axiomatic spec *)

let axcheck_litmus_sound =
  QCheck.Test.make ~count:500
    ~name:"axcheck: litmus must-durable claims hold in every allowed state"
    Gen_common.arb_litmus_prog
    (fun p ->
      QCheck.assume (Litmus.Prog.well_formed p);
      let r = Litmus.Axcheck.check p in
      r.Litmus.Axcheck.r_skipped || r.Litmus.Axcheck.r_violations = [])

let axcheck_ir_sound =
  QCheck.Test.make ~count:400
    ~name:"axcheck: compiled flushline IR claims hold (two layouts)"
    (Gen_common.arb_flushline_ir ~n:6 ())
    (fun seed ->
      let p = Gen_common.flushline_ir ~seed ~n:6 in
      List.for_all
        (fun lines ->
          match Litmus.Axcheck.compile_ir ?lines p with
          | Error e -> QCheck.Test.fail_reportf "compile_ir: %s" e
          | Ok lp ->
              let r = Litmus.Axcheck.check lp in
              r.Litmus.Axcheck.r_skipped
              || r.Litmus.Axcheck.r_violations = [])
        [ None; Some (fun _ -> 0) ])

let may_dirty_refmodel =
  QCheck.Test.make ~count:300
    ~name:"refmodel cache-dirty lines are statically may-dirty"
    Gen_common.arb_litmus_prog
    (fun p ->
      QCheck.assume (Litmus.Prog.well_formed p);
      let claims = Litmus.Axcheck.static_claims p in
      let dirty = Litmus.Axcheck.ref_dirty_lines ~sched_seed:7 p in
      List.for_all
        (fun line ->
          List.exists
            (fun l ->
              Litmus.Prog.line_of p l = line
              && List.mem l claims.Litmus.Axcheck.c_may_dirty)
            (Litmus.Prog.locs p))
        dirty)

let qcheck_tests =
  List.map
    (fun t -> Gen_common.to_alcotest ~suite:"analysis" t)
    [ straightline_exact; branchy_sound ]

let axcheck_qcheck_tests =
  List.map
    (fun t -> Gen_common.to_alcotest ~suite:"analysis-axcheck" t)
    [ axcheck_litmus_sound; axcheck_ir_sound; may_dirty_refmodel ]

let () =
  Alcotest.run "analysis"
    [
      ( "idempotence",
        [
          Alcotest.test_case "Table 2" `Quick test_table2;
          Alcotest.test_case "classification cases" `Quick test_classify_cases;
          Alcotest.test_case "paper x^p example" `Quick
            test_needs_logging_matches_paper_example;
        ] );
      ( "racecheck",
        [
          Alcotest.test_case "locked accesses race-free" `Quick
            test_locked_accesses_race_free;
          Alcotest.test_case "unlocked write-write race" `Quick
            test_unlocked_write_write_races;
          Alcotest.test_case "different locks race" `Quick
            test_read_write_race;
          Alcotest.test_case "happens-before transitivity" `Quick
            test_hb_transitivity;
          Alcotest.test_case "same thread never races" `Quick
            test_same_thread_never_races;
          Alcotest.test_case "dedupe vs race_count" `Quick
            test_race_dedupe_and_count;
        ] );
      ( "ir",
        [
          Alcotest.test_case "well-formedness" `Quick test_ir_check;
          Alcotest.test_case "cfg shape" `Quick test_cfg_shape;
          Alcotest.test_case "dataflow lattices" `Quick test_dataflow_lattices;
        ] );
      ( "warstatic",
        [
          Alcotest.test_case "straight-line Table 2" `Quick
            test_warstatic_straightline;
          Alcotest.test_case "branch may-WAR" `Quick test_warstatic_branch_may;
          Alcotest.test_case "rp resets the region" `Quick
            test_warstatic_rp_resets;
        ] );
      ( "lockset",
        [
          Alcotest.test_case "lock diagnostics" `Quick test_lockset_diagnostics;
          Alcotest.test_case "race candidates" `Quick test_lockset_races;
        ] );
      ( "placement+lint",
        [
          Alcotest.test_case "corpus plans" `Quick test_placement_corpus;
          Alcotest.test_case "clean plans lint clean, mutants don't" `Quick
            test_lint_clean_and_mutant;
          Alcotest.test_case "structural rules" `Quick
            test_lint_structural_rules;
        ] );
      ( "exec",
        [ Alcotest.test_case "kv interpreter finals" `Quick test_interp_kv ] );
      ( "persistate",
        [
          Alcotest.test_case "flush lifecycle" `Quick test_persistate_lifecycle;
          Alcotest.test_case "line-granular pwb" `Quick
            test_persistate_line_mates;
          Alcotest.test_case "branch join" `Quick test_persistate_branch_join;
          Alcotest.test_case "multi-writer demotion" `Quick
            test_persistate_multi_writer;
          Alcotest.test_case "crash truncation" `Quick
            test_persistate_crash_truncation;
        ] );
      ( "flushlint",
        [
          Alcotest.test_case "per-thread rules" `Quick test_flushlint_rules;
          Alcotest.test_case "persist-order race" `Quick test_flushlint_race;
          Alcotest.test_case "wal-append and its mutants" `Quick
            test_flushlint_wal_append;
          Alcotest.test_case "lint front door" `Quick
            test_lint_flush_integration;
          Alcotest.test_case "deterministic output" `Quick
            test_lint_deterministic;
        ] );
      ( "flush-uniformity",
        [
          Alcotest.test_case "well-formedness" `Quick test_flush_ir_uniformity;
          Alcotest.test_case "wal-append interp finals" `Quick
            test_wal_append_interp;
          Alcotest.test_case "wal-append over the memory system" `Quick
            test_wal_append_run_mem;
          Alcotest.test_case "compile_ir round-trip" `Quick
            test_compile_ir_round_trip;
        ] );
      ( "mutants-dynamic",
        [
          Alcotest.test_case "strip-psync loses data on filemem" `Quick
            test_strip_psync_dynamic;
          Alcotest.test_case "redundant-pwb trips the clean-pwb counter"
            `Quick test_redundant_pwb_dynamic;
        ] );
      ("soundness", qcheck_tests);
      ("axcheck-soundness", axcheck_qcheck_tests);
    ]
