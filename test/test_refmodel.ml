(* Differential oracle for the optimized memory-system kernel.

   [Simnvm.Refmodel] is a naive, obviously-correct implementation of the
   PCSO spec that mirrors the kernel's decision procedure draw-for-draw.
   These properties run seeded load/store/pwb/psync/crash/fault sequences
   through both and demand full agreement: every value read, every raised
   media error, cached dirtiness, the persisted image before and after a
   final crash, the poisoned-line set, the exact (float-equal) total
   latency charge, and the entire event stream.

   As in test/common/gen_common.ml, a case generates only its seed and the
   failure printer emits a replay recipe, so a red run identifies the
   exact sequence. *)

module Memsys = Simnvm.Memsys
module Refmodel = Simnvm.Refmodel
module Rng = Simnvm.Rng
module Event = Simnvm.Event
module Stats = Simnvm.Stats

let line_words = 8
let nvm_lines = 32
let dram_lines = 8
let nvm_words = nvm_lines * line_words
let dram_words = dram_lines * line_words
let n_addr = nvm_words + dram_words

let config ~pcso ~faults seed =
  {
    Memsys.default_config with
    Memsys.nvm_words;
    dram_words;
    line_words;
    sets = 4;
    ways = 2 (* 8-line cache over 40 lines: constant eviction pressure *);
    evict_rate = 0.05;
    seed;
    pcso;
    faults =
      (if faults then
         Some
           {
             Memsys.fault_seed = seed lxor 0x5bf03ab5;
             tear_rate = 0.5;
             poison_rate = 0.25;
             bitflip_rate = 4.0 /. float_of_int nvm_words;
             transient_rate = 2.0 /. float_of_int nvm_lines;
           }
       else None);
  }

type media = { m_addr : int; m_line : int; m_transient : bool }

let run_mem f =
  try Ok (f ())
  with Memsys.Media_error { addr; line; transient } ->
    Error { m_addr = addr; m_line = line; m_transient = transient }

let pp_result ppf = function
  | Ok v -> Fmt.pf ppf "ok:%d" v
  | Error m ->
      Fmt.pf ppf "media-error{addr=%d;line=%d;transient=%b}" m.m_addr m.m_line
        m.m_transient

(* One differential run. Raises via QCheck.Test.fail_reportf on
   divergence; returns a digest of the executed op stream (kinds,
   operands, tid rerolls), which pins the seeded draw derivation: the
   replay recipes the printers emit are only as durable as the draw
   order below, so a reordered or added draw must fail the pinned-trace
   test loudly instead of silently invalidating every recorded seed. *)
let run_case ~pcso ~faults ~n_ops seed =
  let cfg = config ~pcso ~faults seed in
  let mem = Memsys.create cfg in
  let rm = Refmodel.create cfg in
  let fail fmt =
    QCheck.Test.fail_reportf
      ("seed=%d pcso=%b faults=%b n_ops=%d: " ^^ fmt)
      seed pcso faults n_ops
  in
  let cur_tid = ref 0 in
  Memsys.set_tid_provider mem (fun () -> !cur_tid);
  Refmodel.set_tid_provider rm (fun () -> !cur_tid);
  let mem_events = ref [] in
  ignore (Memsys.subscribe mem (fun ev -> mem_events := ev :: !mem_events));
  let mem_charge = ref 0.0 in
  Memsys.set_charge mem (fun ns -> mem_charge := !mem_charge +. ns);
  let rng = Rng.create (seed + 0x51ed5eed) in
  let digest = ref 0 in
  let mix v = digest := ((!digest * 31) + v) land 0x3FFFFFFF in
  let step op_ix =
    if Rng.int rng 7 = 0 then cur_tid := Rng.int rng 4 - 1;
    mix !cur_tid;
    match Rng.int rng 100 with
    | k when k < 38 ->
        let addr = Rng.int rng n_addr and v = Rng.int rng 1_000_000 in
        mix 1;
        mix addr;
        mix v;
        let a = run_mem (fun () -> Memsys.store mem addr v) in
        let b = run_mem (fun () -> Refmodel.store rm addr v) in
        if
          (match (a, b) with
          | Ok (), Ok () -> false
          | Error x, Error y -> x <> y
          | _ -> true)
        then
          fail "op %d: store %d diverged (%a vs %a)" op_ix addr pp_result
            (Result.map (fun () -> 0) a)
            pp_result
            (Result.map (fun () -> 0) b);
        if Memsys.is_cached_dirty mem addr <> Refmodel.is_cached_dirty rm addr
        then fail "op %d: dirtiness of %d diverged after store" op_ix addr
    | k when k < 76 ->
        let addr = Rng.int rng n_addr in
        mix 2;
        mix addr;
        let a = run_mem (fun () -> Memsys.load mem addr) in
        let b = run_mem (fun () -> Refmodel.load rm addr) in
        if a <> b then
          fail "op %d: load %d diverged (%a vs %a)" op_ix addr pp_result a
            pp_result b
    | k when k < 86 ->
        let addr = Rng.int rng n_addr in
        mix 3;
        mix addr;
        Memsys.pwb mem addr;
        Refmodel.pwb rm addr
    | k when k < 91 ->
        mix 4;
        Memsys.psync mem;
        Refmodel.psync rm
    | k when k < 94 ->
        mix 5;
        Memsys.crash mem;
        Refmodel.crash rm
    | k when k < 96 ->
        let lineno = Rng.int rng nvm_lines in
        mix 6;
        mix lineno;
        Memsys.poison_line mem lineno;
        Refmodel.poison_line rm lineno
    | k when k < 98 ->
        let lineno = Rng.int rng nvm_lines in
        mix 7;
        mix lineno;
        Memsys.arm_transient_fault mem lineno;
        Refmodel.arm_transient_fault rm lineno
    | _ ->
        let lineno = Rng.int rng nvm_lines in
        mix 8;
        mix lineno;
        Memsys.scrub_line mem lineno;
        Refmodel.scrub_line rm lineno
  in
  for op_ix = 1 to n_ops do
    step op_ix
  done;
  (* Persisted image agreement before the final crash... *)
  if Memsys.image mem <> Refmodel.image rm then
    fail "pre-crash persisted images diverged";
  (* ...and the crash image afterwards (under the ablation and with
     faults enabled, this is where weakened orderings and tears land). *)
  Memsys.crash mem;
  Refmodel.crash rm;
  if Memsys.image mem <> Refmodel.image rm then fail "crash images diverged";
  if Memsys.poisoned_lines mem <> Refmodel.poisoned_lines rm then
    fail "poisoned-line sets diverged";
  if !mem_charge <> Refmodel.total_charge rm then
    fail "total charges diverged (%.17g vs %.17g)" !mem_charge
      (Refmodel.total_charge rm);
  let evs_mem = List.rev !mem_events and evs_rm = Refmodel.events rm in
  if List.length evs_mem <> List.length evs_rm then
    fail "event counts diverged (%d vs %d)" (List.length evs_mem)
      (List.length evs_rm);
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        fail "event %d diverged: %a vs %a" i Event.pp a Event.pp b)
    (List.combine evs_mem evs_rm);
  (* The kernel bumps its stats counters inline instead of via the
     pipeline; they must still match the event stream exactly. *)
  let s = Memsys.stats mem in
  let count p = List.length (List.filter p evs_mem) in
  let checks =
    [
      ("loads", s.Stats.loads, count (function Event.Load _ -> true | _ -> false));
      ("stores", s.Stats.stores, count (function Event.Store _ -> true | _ -> false));
      ("hits", s.Stats.hits, count (function Event.Hit _ -> true | _ -> false));
      ( "dram_misses",
        s.Stats.dram_misses,
        count (function Event.Miss { backing = Event.Dram; _ } -> true | _ -> false) );
      ( "nvm_misses",
        s.Stats.nvm_misses,
        count (function Event.Miss { backing = Event.Nvm; _ } -> true | _ -> false) );
      ( "dram_writebacks",
        s.Stats.dram_writebacks,
        count (function
          | Event.Writeback { backing = Event.Dram; _ } -> true
          | _ -> false) );
      ( "nvm_writebacks",
        s.Stats.nvm_writebacks,
        count (function
          | Event.Writeback { backing = Event.Nvm; _ } -> true
          | _ -> false) );
      ("pwbs", s.Stats.pwbs, count (function Event.Pwb _ -> true | _ -> false));
      ("psyncs", s.Stats.psyncs, count (function Event.Psync _ -> true | _ -> false));
      ( "spontaneous",
        s.Stats.spontaneous_evictions,
        count (function Event.Eviction _ -> true | _ -> false) );
      ("crashes", s.Stats.crashes, count (function Event.Crash _ -> true | _ -> false));
      ( "faults",
        s.Stats.faults_injected,
        count (function Event.Fault_injected _ -> true | _ -> false) );
      ( "media_errors",
        s.Stats.media_errors,
        count (function Event.Media_error _ -> true | _ -> false) );
      ( "media_scrubs",
        s.Stats.media_scrubs,
        count (function Event.Media_scrub _ -> true | _ -> false) );
    ]
  in
  List.iter
    (fun (name, got, want) ->
      if got <> want then
        fail "stats.%s = %d but the event stream says %d" name got want)
    checks;
  !digest

let arb_seed ~pcso ~faults ~n_ops =
  QCheck.make
    ~print:(fun seed ->
      Printf.sprintf
        "refmodel differential: seed=%d pcso=%b faults=%b n_ops=%d" seed pcso
        faults n_ops)
    QCheck.Gen.(1 -- 100_000)

let prop ~name ~count ~pcso ~faults ~n_ops =
  Gen_common.to_alcotest ~suite:"refmodel"
    (QCheck.Test.make ~name ~count
       (arb_seed ~pcso ~faults ~n_ops)
       (fun seed -> ignore (run_case ~pcso ~faults ~n_ops seed : int); true))

(* The seeded derivation itself, pinned: one fixed (seed, n_ops) case
   whose executed op stream must digest to a known constant. See the
   comment on [run_case] — this is what keeps old replay recipes (and
   the per-suite streams of Gen_common.to_alcotest) stable. *)
let pinned_trace () =
  Alcotest.(check int)
    "op-stream digest of seed=42 n_ops=140" 871623150
    (run_case ~pcso:true ~faults:false ~n_ops:140 42)

(* >= 1000 seeded sequences across the four variants, each ~140 ops:
   the CI smoke budget of the ISSUE. *)
let () =
  Alcotest.run "refmodel"
    [
      ( "differential",
        [
          prop ~name:"pcso" ~count:400 ~pcso:true ~faults:false ~n_ops:140;
          prop ~name:"ablation (pcso=false)" ~count:250 ~pcso:false
            ~faults:false ~n_ops:140;
          prop ~name:"faults" ~count:250 ~pcso:true ~faults:true ~n_ops:140;
          prop ~name:"ablation+faults" ~count:100 ~pcso:false ~faults:true
            ~n_ops:140;
        ] );
      ( "seed-stability",
        [ Alcotest.test_case "pinned trace (seed=42)" `Quick pinned_trace ] );
    ]
