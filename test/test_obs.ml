(* Tests of the obs library: JSON printing, metric registry, span
   aggregation, and the Memobs probe riding the Memsys event pipeline. *)

let test_json_printer () =
  let open Obs.Json in
  Alcotest.(check string)
    "scalars and containers"
    {|{"a":1,"b":2.5,"c":"x\"y","d":[true,null],"e":{}}|}
    (to_string
       (Obj
          [
            ("a", Int 1);
            ("b", Float 2.5);
            ("c", String "x\"y");
            ("d", List [ Bool true; Null ]);
            ("e", Obj []);
          ]));
  Alcotest.(check string) "integral float" {|3.0|} (to_string (Float 3.0));
  Alcotest.(check string) "nan degrades to null" {|null|} (to_string (Float nan));
  Alcotest.(check string)
    "control chars escaped" {|"a\nb\u0001"|}
    (to_string (String "a\nb\001"))

let test_json_deterministic () =
  (* Field order is construction order, so the same value prints to the
     same bytes — the property the determinism regression rests on. *)
  let v () =
    Obs.Json.Obj
      [ ("z", Obs.Json.Int 1); ("a", Obs.Json.Float 0.1); ("m", Obs.Json.Null) ]
  in
  Alcotest.(check string)
    "same value, same bytes"
    (Obs.Json.to_string (v ()))
    (Obs.Json.to_string (v ()))

let test_metrics_registry () =
  let r = Obs.Metrics.create () in
  let a = Obs.Metrics.counter r "a" in
  let b = Obs.Metrics.counter r "b" in
  Obs.Metrics.incr a;
  Obs.Metrics.add b 41;
  Obs.Metrics.incr b;
  Alcotest.(check int) "a" 1 (Obs.Metrics.value a);
  Alcotest.(check int) "b" 42 (Obs.Metrics.value b);
  (* get-or-create returns the same counter *)
  Obs.Metrics.incr (Obs.Metrics.counter r "a");
  Alcotest.(check int) "a again" 2 (Obs.Metrics.value a);
  (match Obs.Metrics.to_json r with
  | Obs.Json.Obj [ ("a", Obs.Json.Int 2); ("b", Obs.Json.Int 42) ] -> ()
  | j -> Alcotest.failf "unexpected registry json: %s" (Obs.Json.to_string j));
  Obs.Metrics.reset r;
  Alcotest.(check int) "reset" 0 (Obs.Metrics.value a)

let test_metrics_histogram () =
  let r = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram ~bounds:[| 10.0; 100.0 |] r "lat" in
  List.iter (Obs.Metrics.observe h) [ 5.0; 50.0; 500.0; 7.0 ];
  Alcotest.(check int) "count" 4 (Obs.Metrics.count h);
  Alcotest.check (Alcotest.float 1e-9) "sum" 562.0 (Obs.Metrics.sum h);
  Alcotest.check (Alcotest.float 1e-9) "mean" 140.5 (Obs.Metrics.mean h);
  match Obs.Metrics.to_json r with
  | Obs.Json.Obj [ ("lat", Obs.Json.Obj fields) ] ->
      (match List.assoc "buckets" fields with
      | Obs.Json.Obj
          [
            ("le_10", Obs.Json.Int 2);
            ("le_100", Obs.Json.Int 1);
            ("le_inf", Obs.Json.Int 1);
          ] ->
          ()
      | j -> Alcotest.failf "unexpected buckets: %s" (Obs.Json.to_string j))
  | j -> Alcotest.failf "unexpected json: %s" (Obs.Json.to_string j)

let test_span_breakdown () =
  let r = Obs.Span.create () in
  Obs.Span.emit r ~name:"ckpt" ~t0:0.0 ~t1:10.0;
  Obs.Span.emit r ~name:"ckpt" ~t0:20.0 ~t1:50.0;
  Obs.Span.emit r ~name:"flush" ~t0:1.0 ~t1:2.0;
  Alcotest.(check int) "ckpt count" 2 (Obs.Span.count r "ckpt");
  Alcotest.check (Alcotest.float 1e-9) "ckpt total" 40.0 (Obs.Span.total_ns r "ckpt");
  (match Obs.Span.breakdown r with
  | [ ckpt; flush ] ->
      Alcotest.(check string) "order" "ckpt" ckpt.Obs.Span.s_name;
      Alcotest.check (Alcotest.float 1e-9) "ckpt mean" 20.0 ckpt.Obs.Span.mean_ns;
      Alcotest.check (Alcotest.float 1e-9) "ckpt max" 30.0 ckpt.Obs.Span.max_ns;
      Alcotest.check (Alcotest.float 1e-9) "flush total" 1.0 flush.Obs.Span.total_ns
  | l -> Alcotest.failf "expected 2 aggregates, got %d" (List.length l));
  Obs.Span.reset r;
  Alcotest.(check int) "reset" 0 (Obs.Span.count r "ckpt")

let test_span_keep_cap () =
  let r = Obs.Span.create ~keep:2 () in
  for i = 1 to 5 do
    Obs.Span.emit r ~name:"s" ~t0:0.0 ~t1:(float_of_int i)
  done;
  (* aggregates are exact even when raw retention is capped *)
  Alcotest.(check int) "agg count" 5 (Obs.Span.count r "s");
  match Obs.Span.to_json r with
  | Obs.Json.Obj [ _; ("spans", Obs.Json.List raw) ] ->
      Alcotest.(check int) "raw capped" 2 (List.length raw)
  | j -> Alcotest.failf "unexpected json: %s" (Obs.Json.to_string j)

let test_memobs_probe () =
  let mem = Simnvm.Memsys.create Simnvm.Memsys.default_config in
  let r = Obs.Metrics.create () in
  let _probe, sub = Obs.Memobs.attach r mem in
  Simnvm.Memsys.store mem 0 7;
  ignore (Simnvm.Memsys.load mem 0);
  ignore (Simnvm.Memsys.load mem 4096);
  Simnvm.Memsys.pwb mem 0;
  Simnvm.Memsys.psync mem;
  let v name = Obs.Metrics.value (Obs.Metrics.counter r ("mem." ^ name)) in
  Alcotest.(check int) "stores" 1 (v "stores");
  Alcotest.(check int) "loads" 2 (v "loads");
  Alcotest.(check int) "pwbs" 1 (v "pwbs");
  Alcotest.(check int) "psyncs" 1 (v "psyncs");
  (* probe and Stats agree: both are subscribers of the same pipeline *)
  let s = Simnvm.Memsys.stats mem in
  Alcotest.(check int) "stats agree on loads" s.Simnvm.Stats.loads (v "loads");
  Alcotest.(check int)
    "stats agree on misses"
    (s.Simnvm.Stats.dram_misses + s.Simnvm.Stats.nvm_misses)
    (v "misses.dram" + v "misses.nvm");
  (* detaching stops the probe but not Stats *)
  Simnvm.Memsys.unsubscribe mem sub;
  ignore (Simnvm.Memsys.load mem 0);
  Alcotest.(check int) "probe detached" 2 (v "loads");
  Alcotest.(check int) "stats still counting" 3 s.Simnvm.Stats.loads

let test_flush_discipline_counters () =
  (* the dynamic twins of the static redundant-pwb / psync-no-pending
     rules: clean pwbs and unarmed psyncs *)
  let mem = Simnvm.Memsys.create Simnvm.Memsys.default_config in
  let r = Obs.Metrics.create () in
  let _probe, _sub = Obs.Memobs.attach r mem in
  let v name = Obs.Metrics.value (Obs.Metrics.counter r ("mem." ^ name)) in
  Simnvm.Memsys.store mem 0 7;
  Simnvm.Memsys.pwb mem 0;
  Simnvm.Memsys.psync mem;
  Alcotest.(check int) "armed psync is not a noop" 0 (v "psyncs.noop");
  Alcotest.(check int) "dirty pwb is not clean" 0 (v "pwbs.clean");
  Simnvm.Memsys.psync mem;
  Alcotest.(check int) "psync with nothing pending" 1 (v "psyncs.noop");
  Simnvm.Memsys.pwb mem 0;
  Alcotest.(check int) "pwb of a clean line" 1 (v "pwbs.clean");
  Simnvm.Memsys.psync mem;
  Alcotest.(check int) "clean pwb does not arm" 2 (v "psyncs.noop");
  Simnvm.Memsys.store mem 0 9;
  Simnvm.Memsys.pwb mem 0;
  Simnvm.Memsys.pwb mem 0;
  Alcotest.(check int) "duplicate pwb is clean" 2 (v "pwbs.clean");
  Simnvm.Memsys.psync mem;
  Alcotest.(check int) "rearmed by the dirty pwb" 2 (v "psyncs.noop");
  Alcotest.(check int) "every pwb counted" 4 (v "pwbs")

let test_run_point_json () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.incr (Obs.Metrics.counter r "x");
  let spans = Obs.Span.create () in
  Obs.Span.emit spans ~name:"recovery" ~t0:0.0 ~t1:5.0;
  let pt =
    Obs.Run.point
      ~params:[ ("threads", Obs.Json.Int 4) ]
      ~throughput_mops:1.25
      ~series:[ ("mops", [ 1.0; 2.0 ]) ]
      ~metrics:r ~spans
      ~extra:[ ("note", Obs.Json.String "t") ]
      "sys"
  in
  let doc = Obs.Run.document [ Obs.Run.experiment "exp" [ pt ] ] in
  let s = Obs.Json.to_string doc in
  List.iter
    (fun needle ->
      if
        not
          (let len = String.length needle in
           let rec scan i =
             i + len <= String.length s
             && (String.sub s i len = needle || scan (i + 1))
           in
           scan 0)
      then Alcotest.failf "missing %S in %s" needle s)
    [
      {|"schema":"respct-sim/results/v1"|};
      {|"experiment":"exp"|};
      {|"label":"sys"|};
      {|"throughput_mops":1.25|};
      {|"series":{"mops":[1.0,2.0]}|};
      {|"recovery"|};
      {|"note":"t"|};
    ]

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "printer" `Quick test_json_printer;
          Alcotest.test_case "deterministic" `Quick test_json_deterministic;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
        ] );
      ( "spans",
        [
          Alcotest.test_case "breakdown" `Quick test_span_breakdown;
          Alcotest.test_case "keep cap" `Quick test_span_keep_cap;
        ] );
      ( "probes",
        [
          Alcotest.test_case "memobs pipeline probe" `Quick test_memobs_probe;
          Alcotest.test_case "flush-discipline counters" `Quick
            test_flush_discipline_counters;
          Alcotest.test_case "run point json" `Quick test_run_point_json;
        ] );
    ]
