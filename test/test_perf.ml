(* Tests for the statistical perf harness (lib/perf):

   - the summary statistics are correct and the bootstrap is a pure
     function of (samples, seed);
   - two same-seed smoke runs of the real benchmark suite export
     byte-identical JSON once the wall-clock fields are stripped — the
     bench-determinism guarantee the ISSUE asks for;
   - the regression gate actually fails on a planted 2x slowdown, gates
     wall throughput through the calibration normalisation, and reports
     structural problems (missing benchmark, bad schema) as errors;
   - the Obs.Json reader round-trips the writer's output. *)

module Stat = Perf.Stat
module Bench = Perf.Bench
module Compare = Perf.Compare
module Suite = Perf.Suite
module Json = Obs.Json

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-12)

(* ---------------------------------------------------------------- *)
(* Stat *)

let test_median_mad () =
  checkf "odd median" 3.0 (Stat.median [| 5.0; 1.0; 3.0 |]);
  checkf "even median" 2.5 (Stat.median [| 4.0; 1.0; 2.0; 3.0 |]);
  checkf "mad" 1.0 (Stat.mad [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  checkf "constant mad" 0.0 (Stat.mad [| 7.0; 7.0; 7.0 |])

let test_bootstrap () =
  let xs = [| 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 |] in
  let lo1, hi1 = Stat.bootstrap_ci ~seed:11 xs in
  let lo2, hi2 = Stat.bootstrap_ci ~seed:11 xs in
  checkf "ci lo deterministic" lo1 lo2;
  checkf "ci hi deterministic" hi1 hi2;
  checkb "ci ordered" true (lo1 <= hi1);
  checkb "ci brackets median" true
    (lo1 <= Stat.median xs && Stat.median xs <= hi1);
  let lo, hi = Stat.bootstrap_ci ~seed:3 [| 42.0 |] in
  checkf "singleton lo" 42.0 lo;
  checkf "singleton hi" 42.0 hi

(* ---------------------------------------------------------------- *)
(* JSON round-trip *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("schema", Json.String "respct-sim/bench/v1");
        ("quote", Json.String "a\"b\\c\n\t");
        ("n", Json.Int (-3));
        ("x", Json.Float 1.5);
        ("tiny", Json.Float 1.25e-7);
        ("flag", Json.Bool true);
        ("nothing", Json.Null);
        ("xs", Json.List [ Json.Int 1; Json.Float 2.0; Json.String "z" ]);
        ("empty", Json.List []);
        ("nested", Json.Obj [ ("inner", Json.Obj []) ]);
      ]
  in
  checkb "compact round-trip" true
    (Json.of_string (Json.to_string doc) = Ok doc);
  checkb "pretty round-trip" true
    (Json.of_string (Json.to_string_pretty doc) = Ok doc)

(* ---------------------------------------------------------------- *)
(* Bench determinism on the real suite *)

let smoke_doc () =
  let ms = Suite.run ~seed:42 Suite.smoke_preset in
  Json.to_string (Suite.document ~strip_wall:true ~calibration:0.0
                    Suite.smoke_preset ms)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_bench_determinism () =
  let a = smoke_doc () and b = smoke_doc () in
  check Alcotest.string "same-seed smoke exports identical stripped JSON" a b;
  (* Stripping must actually remove every host-speed-dependent field. *)
  checkb "no wall_s" true (not (contains ~affix:"wall_s" a));
  checkb "no wall_kops" true (not (contains ~affix:"wall_kops" a));
  checkb "no calibration" true (not (contains ~affix:"calibration" a))

(* ---------------------------------------------------------------- *)
(* Regression gate *)

(* A synthetic measurement whose medians we fully control. *)
let measurement ~name ~wall_s ~sim_ns ~ops =
  let samples = Array.init 3 (fun _ -> { Bench.wall_s; sim_ns; ops }) in
  {
    Bench.name;
    warmup = 0;
    runs = 3;
    samples;
    wall_kops = Stat.summarize ~seed:1 (Array.map Bench.wall_kops_of samples);
    sim_mops = Stat.summarize ~seed:1 (Array.map Bench.sim_mops_of samples);
  }

let doc ?(calibration = 100.0) ms =
  Bench.document ~preset:"test" ~calibration ms

let base_ms = [ measurement ~name:"b" ~wall_s:1.0 ~sim_ns:1e9 ~ops:1_000_000 ]

let test_compare_self () =
  let d = doc base_ms in
  let r = Compare.compare ~baseline:d ~current:d () in
  checkb "self-compare passes" true (Compare.ok r);
  check Alcotest.int "two verdicts (wall + sim)" 2
    (List.length r.Compare.verdicts)

let test_compare_planted_slowdown () =
  (* 2x more wall time and 2x more virtual time for the same ops: both
     throughput medians halve, both gates must trip. *)
  let slow =
    [ measurement ~name:"b" ~wall_s:2.0 ~sim_ns:2e9 ~ops:1_000_000 ]
  in
  let r = Compare.compare ~baseline:(doc base_ms) ~current:(doc slow) () in
  checkb "planted 2x slowdown fails" false (Compare.ok r);
  List.iter
    (fun v ->
      checkf (v.Compare.v_metric ^ " ratio") 0.5 v.Compare.v_ratio;
      checkb (v.Compare.v_metric ^ " not ok") false v.Compare.v_ok)
    r.Compare.verdicts

let test_compare_calibration_normalises () =
  (* Same workload on a machine that scores 2x on calibration and runs
     the benchmark 2x faster: normalised ratio is 1.0, no regression. *)
  let fast = [ measurement ~name:"b" ~wall_s:0.5 ~sim_ns:1e9 ~ops:1_000_000 ] in
  let r =
    Compare.compare ~baseline:(doc base_ms)
      ~current:(doc ~calibration:200.0 fast)
      ()
  in
  checkb "normalised equal speed passes" true (Compare.ok r);
  (* Same raw wall throughput on the 2x machine = a real 2x regression. *)
  let r2 =
    Compare.compare ~baseline:(doc base_ms)
      ~current:(doc ~calibration:200.0 base_ms)
      ()
  in
  checkb "hidden-by-raw-wall regression caught" false (Compare.ok r2)

let test_compare_structural () =
  let r =
    Compare.compare ~baseline:(doc base_ms)
      ~current:(doc [ measurement ~name:"other" ~wall_s:1.0 ~sim_ns:1e9 ~ops:1 ])
      ()
  in
  checkb "missing benchmark is an error" false (Compare.ok r);
  checkb "reported in errors" true (r.Compare.errors <> []);
  let bad = Json.Obj [ ("schema", Json.String "nope") ] in
  let r2 = Compare.compare ~baseline:bad ~current:(doc base_ms) () in
  checkb "bad schema is an error" false (Compare.ok r2);
  (* A benchmark only in the current document is new: passes. *)
  let r3 =
    Compare.compare ~baseline:(doc base_ms)
      ~current:
        (doc (base_ms @ [ measurement ~name:"new" ~wall_s:1.0 ~sim_ns:1e9 ~ops:1 ]))
      ()
  in
  checkb "new benchmark passes" true (Compare.ok r3)

let () =
  Alcotest.run "perf"
    [
      ( "stat",
        [
          Alcotest.test_case "median and mad" `Quick test_median_mad;
          Alcotest.test_case "bootstrap" `Quick test_bootstrap;
        ] );
      ("json", [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip ]);
      ( "bench",
        [
          Alcotest.test_case "same-seed determinism" `Quick
            test_bench_determinism;
        ] );
      ( "compare",
        [
          Alcotest.test_case "self compare" `Quick test_compare_self;
          Alcotest.test_case "planted slowdown" `Quick
            test_compare_planted_slowdown;
          Alcotest.test_case "calibration normalisation" `Quick
            test_compare_calibration_normalises;
          Alcotest.test_case "structural errors" `Quick test_compare_structural;
        ] );
    ]
