(* Tests for the cooperative virtual-time scheduler: clock semantics,
   min-clock dispatch order, mutexes, condition variables, barriers, sleep,
   deadlock detection and crash injection. *)

open Simsched
module Mutex = Simsched.Mutex

let outcome =
  Alcotest.testable
    (fun ppf -> function
      | Scheduler.Completed -> Fmt.string ppf "Completed"
      | Scheduler.Crash_interrupt t -> Fmt.pf ppf "Crash@%.0f" t)
    ( = )

(* ------------------------------------------------------------------ *)
(* Basic execution *)

let test_spawn_and_run () =
  let s = Scheduler.create () in
  let hits = ref 0 in
  for _ = 1 to 5 do
    ignore (Scheduler.spawn s (fun () -> incr hits))
  done;
  Alcotest.check outcome "completed" Scheduler.Completed (Scheduler.run s);
  Alcotest.(check int) "all ran" 5 !hits

let test_charge_advances_clock () =
  let s = Scheduler.create () in
  let seen = ref 0.0 in
  ignore
    (Scheduler.spawn s (fun () ->
         Scheduler.charge s 100.0;
         Scheduler.charge s 50.0;
         seen := Scheduler.now s));
  ignore (Scheduler.run s);
  Alcotest.check (Alcotest.float 0.001) "clock" 150.0 !seen;
  Alcotest.check (Alcotest.float 0.001) "elapsed" 150.0 (Scheduler.elapsed s)

let test_min_clock_order () =
  (* A cheap thread and an expensive thread interleave in clock order: the
     observed sequence of (tid, clock) pairs must be sorted by clock. *)
  let s = Scheduler.create () in
  let log = ref [] in
  let worker cost n () =
    for _ = 1 to n do
      Scheduler.charge s cost;
      log := Scheduler.now s :: !log;
      Scheduler.poll s
    done
  in
  ignore (Scheduler.spawn s (worker 10.0 30));
  ignore (Scheduler.spawn s (worker 35.0 10));
  ignore (Scheduler.run s);
  let times = Array.of_list (List.rev !log) in
  (* Each thread may overrun the preemption bound by at most one operation
     (charge-then-poll), so inversions are bounded by the largest op cost. *)
  let max_op = 35.0 in
  let running_max = ref neg_infinity in
  Array.iter
    (fun t ->
      Alcotest.(check bool) "bounded inversion" true (t >= !running_max -. max_op);
      if t > !running_max then running_max := t)
    times

let test_spawn_inside_thread () =
  let s = Scheduler.create () in
  let child_ran = ref false in
  ignore
    (Scheduler.spawn s (fun () ->
         Scheduler.charge s 42.0;
         ignore (Scheduler.spawn s (fun () -> child_ran := true))));
  ignore (Scheduler.run s);
  Alcotest.(check bool) "child ran" true !child_ran

let test_exception_propagates () =
  let s = Scheduler.create () in
  ignore (Scheduler.spawn s (fun () -> failwith "boom"));
  Alcotest.check_raises "reraised" (Failure "boom") (fun () ->
      ignore (Scheduler.run s))

let test_determinism () =
  let run_once () =
    let s = Scheduler.create ~seed:9 ~jitter:0.2 () in
    let m = Mutex.create () in
    let acc = ref [] in
    for i = 1 to 4 do
      ignore
        (Scheduler.spawn s (fun () ->
             for _ = 1 to 20 do
               Mutex.lock s m;
               Scheduler.charge s 30.0;
               acc := i :: !acc;
               Mutex.unlock s m;
               Scheduler.poll s
             done))
    done;
    ignore (Scheduler.run s);
    (!acc, Scheduler.elapsed s)
  in
  let a1, e1 = run_once () in
  let a2, e2 = run_once () in
  Alcotest.(check (list int)) "same interleaving" a1 a2;
  Alcotest.check (Alcotest.float 0.0001) "same makespan" e1 e2

(* ------------------------------------------------------------------ *)
(* Mutex *)

let test_mutex_serialises () =
  (* Contended critical sections are serialised by lock hand-off; an
     uncontended re-acquisition may overlap the previous section by at most
     the scheduler quantum plus one operation (see Mutex). Threads poll
     inside the section, as all simulated memory accesses do. *)
  let s = Scheduler.create () in
  let m = Mutex.create () in
  let sections = ref [] in
  for _ = 1 to 4 do
    ignore
      (Scheduler.spawn s (fun () ->
           for _ = 1 to 10 do
             Mutex.lock s m;
             let start = Scheduler.now s in
             for _ = 1 to 10 do
               Scheduler.charge s 10.0;
               Scheduler.poll s
             done;
             sections := (start, Scheduler.now s) :: !sections;
             Mutex.unlock s m
           done))
  done;
  ignore (Scheduler.run s);
  let by_start = List.sort compare !sections in
  let max_overlap = 12.0 (* one op past the zero quantum *) in
  let rec check_bounded = function
    | (_, e1) :: ((s2, _) :: _ as rest) ->
        Alcotest.(check bool) "bounded overlap" true (s2 >= e1 -. max_overlap);
        check_bounded rest
    | [ _ ] | [] -> ()
  in
  check_bounded by_start

let test_mutex_unlock_not_owner () =
  let s = Scheduler.create () in
  let m = Mutex.create ~name:"m" () in
  ignore
    (Scheduler.spawn s (fun () ->
         Alcotest.check_raises "not owner"
           (Invalid_argument "Mutex.unlock(m): not the owner") (fun () ->
             Mutex.unlock s m)));
  ignore (Scheduler.run s)

let test_mutex_try_lock () =
  let s = Scheduler.create () in
  let m = Mutex.create () in
  let results = ref [] in
  ignore
    (Scheduler.spawn s (fun () ->
         results := Mutex.try_lock s m :: !results;
         results := Mutex.try_lock s m :: !results;
         Mutex.unlock s m;
         results := Mutex.try_lock s m :: !results;
         Mutex.unlock s m));
  ignore (Scheduler.run s);
  Alcotest.(check (list bool)) "try results" [ true; false; true ]
    (List.rev !results)

let test_with_lock_releases_on_exn () =
  let s = Scheduler.create () in
  let m = Mutex.create () in
  ignore
    (Scheduler.spawn s (fun () ->
         (try Mutex.with_lock s m (fun () -> failwith "inner") with
         | Failure _ -> ());
         Alcotest.(check bool) "released" true (Mutex.holder m = None)));
  ignore (Scheduler.run s)

let test_contended_lock_advances_clock () =
  (* A thread blocked on a contended lock resumes no earlier than the
     release time (the exact hand-off path). *)
  let s = Scheduler.create () in
  let m = Mutex.create () in
  let t2_entry = ref 0.0 in
  ignore
    (Scheduler.spawn s (fun () ->
         Mutex.lock s m;
         Scheduler.charge s 1000.0;
         Scheduler.poll s;
         Mutex.unlock s m));
  ignore
    (Scheduler.spawn s (fun () ->
         Scheduler.charge s 10.0;
         Scheduler.poll s;
         Mutex.lock s m;
         t2_entry := Scheduler.now s;
         Mutex.unlock s m));
  ignore (Scheduler.run s);
  Alcotest.(check bool) "waited until release" true (!t2_entry >= 1000.0)

(* ------------------------------------------------------------------ *)
(* Condvar *)

let test_condvar_producer_consumer () =
  let s = Scheduler.create () in
  let m = Mutex.create () in
  let cv = Condvar.create () in
  let queue = Queue.create () in
  let consumed = ref [] in
  ignore
    (Scheduler.spawn s ~name:"consumer" (fun () ->
         for _ = 1 to 10 do
           Mutex.lock s m;
           while Queue.is_empty queue do
             Condvar.wait s cv m
           done;
           consumed := Queue.pop queue :: !consumed;
           Mutex.unlock s m
         done));
  ignore
    (Scheduler.spawn s ~name:"producer" (fun () ->
         for i = 1 to 10 do
           Scheduler.charge s 50.0;
           Mutex.lock s m;
           Queue.push i queue;
           Condvar.signal s cv;
           Mutex.unlock s m;
           Scheduler.poll s
         done));
  Alcotest.check outcome "completed" Scheduler.Completed (Scheduler.run s);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !consumed)

let test_condvar_broadcast () =
  let s = Scheduler.create () in
  let m = Mutex.create () in
  let cv = Condvar.create () in
  let go = ref false in
  let woken = ref 0 in
  for _ = 1 to 5 do
    ignore
      (Scheduler.spawn s (fun () ->
           Mutex.lock s m;
           while not !go do
             Condvar.wait s cv m
           done;
           incr woken;
           Mutex.unlock s m))
  done;
  ignore
    (Scheduler.spawn s (fun () ->
         Scheduler.charge s 500.0;
         Mutex.lock s m;
         go := true;
         Condvar.broadcast s cv;
         Mutex.unlock s m));
  Alcotest.check outcome "completed" Scheduler.Completed (Scheduler.run s);
  Alcotest.(check int) "all woken" 5 !woken

let test_condvar_signal_no_waiter () =
  let s = Scheduler.create () in
  let cv = Condvar.create () in
  ignore (Scheduler.spawn s (fun () -> Condvar.signal s cv));
  Alcotest.check outcome "no-op" Scheduler.Completed (Scheduler.run s)

(* ------------------------------------------------------------------ *)
(* Barrier / sleep / deadlock *)

let test_barrier_syncs_clocks () =
  let s = Scheduler.create () in
  let b = Barrier.create 3 in
  let after = ref [] in
  List.iter
    (fun cost ->
      ignore
        (Scheduler.spawn s (fun () ->
             Scheduler.charge s cost;
             Scheduler.poll s;
             Barrier.await s b;
             after := Scheduler.now s :: !after)))
    [ 100.0; 2000.0; 500.0 ];
  ignore (Scheduler.run s);
  List.iter
    (fun t -> Alcotest.(check bool) "past slowest" true (t >= 2000.0))
    !after

let test_sleep_until_orders_timer () =
  (* A timer thread sleeping to t=1000 must observe work done by a worker
     before t=1000 and none of the work after. *)
  let s = Scheduler.create () in
  let progress = ref 0 in
  let seen = ref (-1) in
  ignore
    (Scheduler.spawn s ~name:"worker" (fun () ->
         for _ = 1 to 100 do
           Scheduler.charge s 100.0;
           incr progress;
           Scheduler.poll s
         done));
  ignore
    (Scheduler.spawn s ~name:"timer" (fun () ->
         Scheduler.sleep_until s 1000.0;
         seen := !progress));
  ignore (Scheduler.run s);
  (* ~10 units of 100ns work fit before t=1000. *)
  Alcotest.(check bool) "timer saw partial progress" true
    (!seen >= 9 && !seen <= 11)

let test_deadlock_detection () =
  let s = Scheduler.create () in
  let a = Mutex.create ~name:"a" () in
  let b = Mutex.create ~name:"b" () in
  ignore
    (Scheduler.spawn s (fun () ->
         Mutex.lock s a;
         Scheduler.charge s 100.0;
         Scheduler.yield s;
         Mutex.lock s b;
         Mutex.unlock s b;
         Mutex.unlock s a));
  ignore
    (Scheduler.spawn s (fun () ->
         Mutex.lock s b;
         Scheduler.charge s 100.0;
         Scheduler.yield s;
         Mutex.lock s a;
         Mutex.unlock s a;
         Mutex.unlock s b));
  (match Scheduler.run s with
  | exception Scheduler.Deadlock _ -> ()
  | _ -> Alcotest.fail "expected deadlock")

(* ------------------------------------------------------------------ *)
(* Crash injection *)

let test_crash_interrupts () =
  let s = Scheduler.create () in
  let steps = ref 0 in
  ignore
    (Scheduler.spawn s (fun () ->
         for _ = 1 to 1000 do
           Scheduler.charge s 100.0;
           incr steps;
           Scheduler.poll s
         done));
  Scheduler.set_crash_at s 5_000.0;
  (match Scheduler.run s with
  | Scheduler.Crash_interrupt t ->
      Alcotest.check (Alcotest.float 0.001) "crash time" 5_000.0 t
  | Scheduler.Completed -> Alcotest.fail "expected crash");
  Alcotest.(check bool) "stopped near crash point" true
    (!steps >= 49 && !steps <= 51)

let test_crash_before_any_work () =
  let s = Scheduler.create () in
  ignore (Scheduler.spawn s (fun () -> Scheduler.charge s 10.0));
  Scheduler.set_crash_at s 0.0;
  match Scheduler.run s with
  | Scheduler.Crash_interrupt _ -> ()
  | Scheduler.Completed -> Alcotest.fail "expected crash"

let test_completion_before_crash () =
  let s = Scheduler.create () in
  ignore (Scheduler.spawn s (fun () -> Scheduler.charge s 10.0));
  Scheduler.set_crash_at s 1_000_000.0;
  Alcotest.check outcome "completed first" Scheduler.Completed
    (Scheduler.run s)

let test_crash_holds_locks () =
  (* A crash must not run unlock paths: the lock stays held afterwards. *)
  let s = Scheduler.create () in
  let m = Mutex.create () in
  ignore
    (Scheduler.spawn s (fun () ->
         Mutex.with_lock s m (fun () ->
             for _ = 1 to 100 do
               Scheduler.charge s 100.0;
               Scheduler.poll s
             done)));
  Scheduler.set_crash_at s 500.0;
  (match Scheduler.run s with
  | Scheduler.Crash_interrupt _ -> ()
  | Scheduler.Completed -> Alcotest.fail "expected crash");
  Alcotest.(check bool) "lock still held" true (Mutex.holder m <> None)

(* ------------------------------------------------------------------ *)
(* Env integration *)

let test_env_charges_thread () =
  let mem = Simnvm.Memsys.create Simnvm.Memsys.default_config in
  let s = Scheduler.create () in
  let env = Env.make mem s in
  let t_end = ref 0.0 in
  ignore
    (Scheduler.spawn s (fun () ->
         Env.store env 100 7;
         Alcotest.(check int) "value" 7 (Env.load env 100);
         Env.pwb env 100;
         Env.psync env;
         Env.compute env 1000.0;
         t_end := Scheduler.now s));
  ignore (Scheduler.run s);
  Alcotest.(check bool) "time charged" true (!t_end > 1000.0)

let test_env_two_threads_parallel_time () =
  (* Two independent threads doing the same work should finish at roughly
     the same virtual instant (parallel execution), not double time. *)
  let mem = Simnvm.Memsys.create Simnvm.Memsys.default_config in
  let s = Scheduler.create () in
  let env = Env.make mem s in
  let ends = ref [] in
  for i = 0 to 1 do
    ignore
      (Scheduler.spawn s (fun () ->
           for j = 0 to 999 do
             Env.store env ((i * 4096) + (j mod 512)) j
           done;
           ends := Scheduler.now s :: !ends))
  done;
  ignore (Scheduler.run s);
  match !ends with
  | [ a; b ] ->
      let ratio = Float.max a b /. Float.min a b in
      Alcotest.(check bool) "parallel, not serial" true (ratio < 1.5)
  | _ -> Alcotest.fail "expected two threads"

(* ------------------------------------------------------------------ *)
(* Trace bus *)

let kind_of (ev : Trace.event) =
  match ev with
  | Trace.Load _ -> "load"
  | Trace.Store _ -> "store"
  | Trace.Rmw _ -> "rmw"
  | Trace.Pwb _ -> "pwb"
  | Trace.Psync _ -> "psync"
  | Trace.Compute _ -> "compute"
  | Trace.Acquire _ -> "acquire"
  | Trace.Release _ -> "release"
  | Trace.Restart_point _ -> "rp"

let traced f =
  let mem = Simnvm.Memsys.create Simnvm.Memsys.default_config in
  let s = Scheduler.create () in
  let env = Env.make mem s in
  let (), tr =
    Trace.record (Scheduler.trace_bus s) (fun () ->
        ignore (Scheduler.spawn s (fun () -> f env));
        ignore (Scheduler.run s))
  in
  List.map kind_of tr

let test_trace_full_stream () =
  (* Every Env wrapper publishes on the world's bus. *)
  Alcotest.(check (list string))
    "full stream"
    [ "store"; "load"; "pwb"; "psync"; "compute" ]
    (traced (fun env ->
         Env.store env 0 1;
         ignore (Env.load env 0);
         Env.pwb env 0;
         Env.psync env;
         Env.compute env 50.0))

let test_trace_rmw_regression () =
  (* Regression: cas/faa used to bypass tracing entirely, leaving RMW-heavy
     structures invisible to the race checker and RP advisor. Each RMW must
     appear as load(+store on write)+rmw. *)
  Alcotest.(check (list string))
    "successful cas" [ "load"; "store"; "rmw" ]
    (traced (fun env -> ignore (Env.cas env 0 ~expected:0 ~desired:1)));
  Alcotest.(check (list string))
    "failed cas emits no store" [ "load"; "rmw" ]
    (traced (fun env -> ignore (Env.cas env 0 ~expected:99 ~desired:1)));
  Alcotest.(check (list string))
    "faa" [ "load"; "store"; "rmw" ]
    (traced (fun env -> ignore (Env.faa env 0 7)))

let test_trace_mutex_events () =
  let s = Scheduler.create () in
  let m = Mutex.create () in
  let (), tr =
    Trace.record (Scheduler.trace_bus s) (fun () ->
        ignore
          (Scheduler.spawn s (fun () ->
               Mutex.with_lock s m (fun () -> Scheduler.charge s 10.0)));
        ignore (Scheduler.run s))
  in
  Alcotest.(check (list string))
    "lock events" [ "acquire"; "release" ]
    (List.filter
       (fun k -> k = "acquire" || k = "release")
       (List.map kind_of tr))

let test_trace_inactive_by_default () =
  let s = Scheduler.create () in
  let bus = Scheduler.trace_bus s in
  Alcotest.(check bool) "inactive" false (Trace.active bus);
  let sub = Trace.subscribe bus (fun _ -> ()) in
  Alcotest.(check bool) "active" true (Trace.active bus);
  Trace.unsubscribe bus sub;
  Alcotest.(check bool) "inactive again" false (Trace.active bus)

let () =
  Alcotest.run "simsched"
    [
      ( "scheduler",
        [
          Alcotest.test_case "spawn and run" `Quick test_spawn_and_run;
          Alcotest.test_case "charge advances clock" `Quick
            test_charge_advances_clock;
          Alcotest.test_case "min-clock dispatch order" `Quick
            test_min_clock_order;
          Alcotest.test_case "spawn inside thread" `Quick
            test_spawn_inside_thread;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "deterministic" `Quick test_determinism;
        ] );
      ( "mutex",
        [
          Alcotest.test_case "serialises critical sections" `Quick
            test_mutex_serialises;
          Alcotest.test_case "unlock by non-owner" `Quick
            test_mutex_unlock_not_owner;
          Alcotest.test_case "try_lock" `Quick test_mutex_try_lock;
          Alcotest.test_case "with_lock releases on exn" `Quick
            test_with_lock_releases_on_exn;
          Alcotest.test_case "contention advances clock" `Quick
            test_contended_lock_advances_clock;
        ] );
      ( "condvar",
        [
          Alcotest.test_case "producer/consumer" `Quick
            test_condvar_producer_consumer;
          Alcotest.test_case "broadcast" `Quick test_condvar_broadcast;
          Alcotest.test_case "signal without waiter" `Quick
            test_condvar_signal_no_waiter;
        ] );
      ( "coordination",
        [
          Alcotest.test_case "barrier syncs clocks" `Quick
            test_barrier_syncs_clocks;
          Alcotest.test_case "sleep_until orders timer" `Quick
            test_sleep_until_orders_timer;
          Alcotest.test_case "deadlock detection" `Quick
            test_deadlock_detection;
        ] );
      ( "crash",
        [
          Alcotest.test_case "crash interrupts" `Quick test_crash_interrupts;
          Alcotest.test_case "crash at t=0" `Quick test_crash_before_any_work;
          Alcotest.test_case "completion before crash" `Quick
            test_completion_before_crash;
          Alcotest.test_case "crash holds locks" `Quick test_crash_holds_locks;
        ] );
      ( "env",
        [
          Alcotest.test_case "charges thread clock" `Quick
            test_env_charges_thread;
          Alcotest.test_case "parallel virtual time" `Quick
            test_env_two_threads_parallel_time;
        ] );
      ( "trace",
        [
          Alcotest.test_case "full access stream" `Quick test_trace_full_stream;
          Alcotest.test_case "cas/faa traced (regression)" `Quick
            test_trace_rmw_regression;
          Alcotest.test_case "mutex events" `Quick test_trace_mutex_events;
          Alcotest.test_case "inactive by default" `Quick
            test_trace_inactive_by_default;
        ] );
    ]
