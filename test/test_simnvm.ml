(* Tests for the simulated memory hierarchy: cache coherence, persistency
   semantics (PCSO), crash behaviour, eviction, cost accounting. *)

open Simnvm

let cfg ?(evict_rate = 0.0) ?(eadr = false) ?(pcso = true) ?(sets = 64)
    ?(ways = 4) () =
  { Memsys.default_config with Memsys.evict_rate = evict_rate; eadr; pcso; sets; ways }

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10);
    let f = Rng.float r in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_split_independent () =
  let r = Rng.create 3 in
  let r' = Rng.split r in
  let xs = List.init 20 (fun _ -> Rng.bits r) in
  let ys = List.init 20 (fun _ -> Rng.bits r') in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

(* ------------------------------------------------------------------ *)
(* Addr *)

let lw = 8

let test_addr_arith () =
  Alcotest.(check int) "line_of" 2 (Addr.line_of ~line_words:lw 17);
  Alcotest.(check int) "line_base" 16 (Addr.line_base ~line_words:lw 17);
  Alcotest.(check int) "offset" 1 (Addr.offset_in_line ~line_words:lw 17);
  Alcotest.(check bool) "same line" true (Addr.same_line ~line_words:lw 16 23);
  Alcotest.(check bool) "diff line" false (Addr.same_line ~line_words:lw 15 16)

let test_addr_align_for () =
  (* 3 words starting at offset 6 of an 8-word line must skip to next line. *)
  Alcotest.(check int) "skip" 16 (Addr.align_for ~line_words:lw ~words:3 14);
  Alcotest.(check int) "fits" 13 (Addr.align_for ~line_words:lw ~words:3 13);
  Alcotest.(check int) "exact end" 5 (Addr.align_for ~line_words:lw ~words:3 5);
  Alcotest.check_raises "too large"
    (Invalid_argument "Addr.align_for: allocation larger than a cache line")
    (fun () -> ignore (Addr.align_for ~line_words:lw ~words:9 0))

(* ------------------------------------------------------------------ *)
(* Memsys basics *)

let test_store_load_roundtrip () =
  let m = Memsys.create (cfg ()) in
  Memsys.store m 100 42;
  Alcotest.(check int) "read back" 42 (Memsys.load m 100);
  Memsys.store m 100 43;
  Alcotest.(check int) "overwrite" 43 (Memsys.load m 100)

let test_unflushed_store_lost_on_crash () =
  let m = Memsys.create (cfg ()) in
  Memsys.store m 100 42;
  Alcotest.(check int) "not yet persistent" 0 (Memsys.persisted m 100);
  Memsys.crash m;
  Alcotest.(check int) "lost" 0 (Memsys.persisted m 100);
  Alcotest.(check int) "load sees NVMM image" 0 (Memsys.load m 100)

let test_pwb_persists () =
  let m = Memsys.create (cfg ()) in
  Memsys.store m 100 42;
  Memsys.pwb m 100;
  Memsys.psync m;
  Memsys.crash m;
  Alcotest.(check int) "survived" 42 (Memsys.load m 100)

let test_flush_all () =
  let m = Memsys.create (cfg ()) in
  for i = 0 to 99 do
    Memsys.store m i i
  done;
  Memsys.flush_all m;
  Memsys.crash m;
  for i = 0 to 99 do
    Alcotest.(check int) "persisted" i (Memsys.load m i)
  done

let test_dram_lost_on_crash () =
  let m = Memsys.create (cfg ()) in
  let dram_addr = (Memsys.config m).Memsys.nvm_words + 5 in
  Memsys.store m dram_addr 7;
  Memsys.pwb m dram_addr;
  (* even an explicit write-back does not make DRAM survive *)
  Memsys.crash m;
  Alcotest.(check int) "dram zeroed" 0 (Memsys.load m dram_addr)

let test_persisted_rejects_dram () =
  let m = Memsys.create (cfg ()) in
  let dram_addr = (Memsys.config m).Memsys.nvm_words in
  Alcotest.check_raises "reject"
    (Invalid_argument "Memsys.persisted: address not in NVMM") (fun () ->
      ignore (Memsys.persisted m dram_addr))

let test_force_evict_and_drop () =
  let m = Memsys.create (cfg ()) in
  Memsys.store m 8 1;
  Memsys.force_evict m 8;
  Alcotest.(check int) "evicted line persisted" 1 (Memsys.persisted m 8);
  Memsys.store m 16 2;
  Memsys.drop_line m 16;
  Alcotest.(check int) "dropped line lost" 0 (Memsys.persisted m 16);
  Alcotest.(check int) "reload from NVMM" 0 (Memsys.load m 16)

let test_capacity_eviction_persists () =
  (* Touch far more lines than the cache holds: dirty victims are written
     back, so their values must be visible in the NVMM image. *)
  let m = Memsys.create (cfg ~sets:4 ~ways:2 ()) in
  let n = 512 in
  for i = 0 to n - 1 do
    Memsys.store m (i * lw) i
  done;
  let s = Memsys.stats m in
  Alcotest.(check bool) "writebacks happened" true (s.Stats.nvm_writebacks > 0);
  let persisted = ref 0 in
  for i = 0 to n - 1 do
    if Memsys.persisted m (i * lw) = i then incr persisted
  done;
  Alcotest.(check bool) "most lines persisted" true (!persisted >= n - (4 * 2))

let test_coherence_after_eviction () =
  (* Values remain coherent through the cache regardless of evictions. *)
  let m = Memsys.create (cfg ~sets:2 ~ways:1 ~evict_rate:0.5 ()) in
  let r = Rng.create 11 in
  let model = Hashtbl.create 64 in
  for _ = 1 to 5000 do
    let a = Rng.int r 256 in
    if Rng.bool r then begin
      let v = Rng.bits r in
      Memsys.store m a v;
      Hashtbl.replace model a v
    end
    else
      let expected = Option.value ~default:0 (Hashtbl.find_opt model a) in
      Alcotest.(check int) "coherent" expected (Memsys.load m a)
  done

(* ------------------------------------------------------------------ *)
(* PCSO: same-line ordering, the InCLL foundation *)

(* Write backup at [base], then record at [base+1] (same line). Under PCSO,
   whenever the record value is persistent the backup must be too. *)
let pcso_trial ~pcso seed =
  let m = Memsys.create (cfg ~pcso ~evict_rate:0.3 ~sets:2 ~ways:1 ()) in
  let m =
    ignore seed;
    m
  in
  let r = Rng.create seed in
  let base = 64 in
  let violation = ref false in
  for round = 1 to 200 do
    Memsys.store m base round (* backup *);
    Memsys.store m (base + 1) round (* record *);
    (* stir the cache to provoke evictions *)
    for _ = 1 to 4 do
      Memsys.store m (Rng.int r 128 * lw) round
    done;
    if Memsys.persisted m (base + 1) = round && Memsys.persisted m base <> round
    then violation := true
  done;
  !violation

let test_pcso_same_line_ordering () =
  for seed = 1 to 20 do
    Alcotest.(check bool) "no violation under PCSO" false
      (pcso_trial ~pcso:true seed)
  done

let test_non_pcso_ablation_violates () =
  (* The word-granular ablation must be able to violate same-line ordering:
     at least one of many seeds shows a violation. *)
  let any = ref false in
  for seed = 1 to 50 do
    if pcso_trial ~pcso:false seed then any := true
  done;
  Alcotest.(check bool) "ablation violates ordering" true !any

(* ------------------------------------------------------------------ *)
(* eADR *)

let test_eadr_crash_drains_cache () =
  let m = Memsys.create (cfg ~eadr:true ()) in
  Memsys.store m 100 42;
  Memsys.crash m;
  Alcotest.(check int) "drained by battery" 42 (Memsys.load m 100)

let test_eadr_does_not_drain_dram () =
  let m = Memsys.create (cfg ~eadr:true ()) in
  let dram_addr = (Memsys.config m).Memsys.nvm_words + 3 in
  Memsys.store m dram_addr 9;
  Memsys.crash m;
  Alcotest.(check int) "dram still volatile" 0 (Memsys.load m dram_addr)

(* ------------------------------------------------------------------ *)
(* Cost accounting *)

let with_cost m f =
  let acc = ref 0.0 in
  Memsys.set_charge m (fun c -> acc := !acc +. c);
  f ();
  Memsys.set_charge m (fun _ -> ());
  !acc

let test_costs_hit_vs_miss () =
  let m = Memsys.create (cfg ()) in
  let miss = with_cost m (fun () -> ignore (Memsys.load m 100)) in
  let hit = with_cost m (fun () -> ignore (Memsys.load m 100)) in
  Alcotest.(check bool) "miss dearer than hit" true (miss > hit);
  Alcotest.(check bool) "hit positive" true (hit > 0.0)

let test_costs_nvm_vs_dram_miss () =
  let m = Memsys.create (cfg ()) in
  let nvm = with_cost m (fun () -> ignore (Memsys.load m 0)) in
  let dram_addr = (Memsys.config m).Memsys.nvm_words in
  let dram = with_cost m (fun () -> ignore (Memsys.load m dram_addr)) in
  Alcotest.(check bool) "NVM miss dearer than DRAM miss" true (nvm > dram)

let test_costs_pwb_psync () =
  let m = Memsys.create (cfg ()) in
  Memsys.store m 100 1;
  let flush =
    with_cost m (fun () ->
        Memsys.pwb m 100;
        Memsys.psync m)
  in
  let lat = (Memsys.config m).Memsys.latency in
  Alcotest.check (Alcotest.float 0.001)
    "clwb + sfence"
    (lat.Latency.clwb_ns +. lat.Latency.sfence_ns)
    flush

let test_eadr_flush_free () =
  let lat = Latency.eadr_of Latency.default in
  let m = Memsys.create { (cfg ()) with Memsys.latency = lat; eadr = true } in
  Memsys.store m 100 1;
  let flush =
    with_cost m (fun () ->
        Memsys.pwb m 100;
        Memsys.psync m)
  in
  Alcotest.check (Alcotest.float 0.001) "free under eADR" 0.0 flush

let test_stats_counters () =
  let m = Memsys.create (cfg ()) in
  ignore (Memsys.load m 0);
  Memsys.store m 0 1;
  Memsys.pwb m 0;
  Memsys.psync m;
  let s = Memsys.stats m in
  Alcotest.(check int) "loads" 1 s.Stats.loads;
  Alcotest.(check int) "stores" 1 s.Stats.stores;
  Alcotest.(check int) "pwbs" 1 s.Stats.pwbs;
  Alcotest.(check int) "psyncs" 1 s.Stats.psyncs;
  Alcotest.(check int) "hits" 1 s.Stats.hits;
  Stats.reset s;
  Alcotest.(check int) "reset" 0 (Stats.accesses s)

let test_create_validation () =
  Alcotest.check_raises "unaligned nvm"
    (Invalid_argument "Memsys.create: nvm_words must be line-aligned")
    (fun () -> ignore (Memsys.create { (cfg ()) with Memsys.nvm_words = 100 }))

(* ------------------------------------------------------------------ *)
(* Event pipeline *)

let kind_of (ev : Event.t) =
  match ev with
  | Event.Load _ -> "load"
  | Event.Store _ -> "store"
  | Event.Hit _ -> "hit"
  | Event.Miss _ -> "miss"
  | Event.Writeback _ -> "writeback"
  | Event.Pwb _ -> "pwb"
  | Event.Psync _ -> "psync"
  | Event.Eviction _ -> "eviction"
  | Event.Crash _ -> "crash"
  | Event.Fault_injected _ -> "fault"
  | Event.Media_error _ -> "media-error"
  | Event.Media_scrub _ -> "media-scrub"

let test_pipeline_delivery () =
  let m = Memsys.create (cfg ()) in
  let seen = ref [] in
  let _sub = Memsys.subscribe m (fun ev -> seen := kind_of ev :: !seen) in
  Memsys.store m 0 1;
  ignore (Memsys.load m 0);
  Memsys.pwb m 0;
  Memsys.psync m;
  (* Access events precede their hit/miss resolution; the pwb of a dirty
     line carries its write-back; everything arrives in program order. *)
  Alcotest.(check (list string))
    "event sequence"
    [ "store"; "miss"; "load"; "hit"; "pwb"; "writeback"; "psync" ]
    (List.rev !seen);
  (* The default Stats subscriber saw the same events. *)
  let s = Memsys.stats m in
  Alcotest.(check int) "stats loads" 1 s.Stats.loads;
  Alcotest.(check int) "stats stores" 1 s.Stats.stores;
  Alcotest.(check int) "stats pwbs" 1 s.Stats.pwbs

let test_pipeline_unsubscribe () =
  let m = Memsys.create (cfg ()) in
  (* Stats is subscriber #0, attached by create. *)
  Alcotest.(check int) "default count" 1 (Memsys.subscriber_count m);
  let n = ref 0 in
  let sub = Memsys.subscribe m (fun _ -> incr n) in
  Alcotest.(check int) "after subscribe" 2 (Memsys.subscriber_count m);
  Memsys.store m 0 1;
  let seen_before = !n in
  Alcotest.(check bool) "saw events" true (seen_before > 0);
  Memsys.unsubscribe m sub;
  Alcotest.(check int) "after unsubscribe" 1 (Memsys.subscriber_count m);
  Memsys.store m 8 2;
  Alcotest.(check int) "no further delivery" seen_before !n;
  (* unsubscribing twice is a harmless no-op *)
  Memsys.unsubscribe m sub;
  Alcotest.(check int) "double detach no-op" 1 (Memsys.subscriber_count m)

(* Crash-explorer usage pattern: transient counting subscribers attach and
   detach around every re-execution (Fun.protect on exceptional exits, the
   way Crashtest.Crashpoint does), including subscribers that abort the
   run by raising mid-event. Churning them must never strand an entry in
   the pipeline or starve the remaining subscribers. *)
let test_pipeline_churn () =
  let m = Memsys.create (cfg ()) in
  let base = Memsys.subscriber_count m in
  let delivered = ref 0 in
  let _keeper = Memsys.subscribe m (fun _ -> incr delivered) in
  for round = 1 to 50 do
    let n = ref 0 in
    let sub = Memsys.subscribe m (fun _ -> incr n) in
    (try
       Fun.protect
         ~finally:(fun () -> Memsys.unsubscribe m sub)
         (fun () ->
           Memsys.store m (8 * (round mod 16)) round;
           if round mod 7 = 0 then failwith "simulated crash boundary";
           ignore (Memsys.load m (8 * (round mod 16))))
     with Failure _ -> ());
    Alcotest.(check int)
      (Printf.sprintf "round %d detached" round)
      (base + 1) (Memsys.subscriber_count m);
    Alcotest.(check bool)
      (Printf.sprintf "round %d saw its events" round)
      true (!n > 0)
  done;
  Alcotest.(check bool) "long-lived subscriber kept receiving" true
    (!delivered >= 50);
  let s = Memsys.stats m in
  Alcotest.(check int) "stats saw every store" 50 s.Stats.stores

let test_pipeline_clear_freezes_stats () =
  let m = Memsys.create (cfg ()) in
  Memsys.store m 0 1;
  let s = Memsys.stats m in
  Alcotest.(check int) "counted" 1 s.Stats.stores;
  Memsys.clear_subscribers m;
  Alcotest.(check int) "no subscribers" 0 (Memsys.subscriber_count m);
  Memsys.store m 8 2;
  ignore (Memsys.load m 8);
  Alcotest.(check int) "stats frozen" 1 s.Stats.stores;
  Alcotest.(check int) "loads frozen" 0 s.Stats.loads;
  (* semantics are unaffected: the zero-subscriber path still works *)
  Alcotest.(check int) "value intact" 2 (Memsys.load m 8)

(* Crash explorers churn a transient subscriber around every one of their
   thousands of re-executions, so a subscribe/unsubscribe cycle must cost
   no allocation at steady state (the subscriber arrays are in place;
   detaching shifts in place). Guard it with a minor-heap budget: the old
   list-rebuilding unsubscribe spent dozens of words per cycle, a cycle on
   the flat arrays spends none. *)
let test_subscriber_churn_cost () =
  let m = Memsys.create (cfg ()) in
  let f (_ : Event.t) = () in
  (* Grow the subscriber capacity past anything the loop needs. *)
  let warm = Array.init 8 (fun _ -> Memsys.subscribe m f) in
  Array.iter (fun id -> Memsys.unsubscribe m id) warm;
  let rounds = 10_000 in
  let before = Gc.minor_words () in
  for _ = 1 to rounds do
    let sub = Memsys.subscribe m f in
    Memsys.unsubscribe m sub
  done;
  let per_round = (Gc.minor_words () -. before) /. float_of_int rounds in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state churn allocates (%.3f words/cycle, want < 1)"
       per_round)
    true (per_round < 1.0)

(* ------------------------------------------------------------------ *)
(* Faulty media: the seeded crash-time fault layer and the fault-plan
   hooks recovery relies on. *)

let faulty_cfg ?(fault_seed = 5) () =
  {
    (cfg ()) with
    Memsys.faults =
      Some
        {
          Memsys.fault_seed;
          tear_rate = 0.5;
          poison_rate = 0.25;
          bitflip_rate = 0.002;
          transient_rate = 0.01;
        };
  }

(* Plenty of dirty lines at crash time, a few explicit persists. *)
let fault_workload m =
  let r = Rng.create 42 in
  for i = 1 to 300 do
    let a = Rng.int r 512 in
    Memsys.store m a i;
    if i mod 7 = 0 then Memsys.pwb m a
  done

let crash_with_faults fault_seed =
  let m = Memsys.create (faulty_cfg ~fault_seed ()) in
  let faults = ref [] in
  let _sub =
    Memsys.subscribe m (fun ev ->
        match ev with
        | Event.Fault_injected f -> faults := f :: !faults
        | _ -> ())
  in
  fault_workload m;
  Memsys.crash m;
  (Memsys.image m, List.rev !faults, Memsys.poisoned_lines m)

let test_fault_injection_deterministic () =
  let i1, f1, p1 = crash_with_faults 5 in
  let i2, f2, p2 = crash_with_faults 5 in
  Alcotest.(check bool) "faults were injected at all" true (f1 <> []);
  Alcotest.(check bool) "same seed, same fault events" true (f1 = f2);
  Alcotest.(check (array int)) "same seed, same image" i1 i2;
  Alcotest.(check (list int)) "same seed, same poison set" p1 p2;
  let i3, f3, _ = crash_with_faults 6 in
  Alcotest.(check bool)
    "different seed, different damage" true
    (f1 <> f3 || i1 <> i3)

let test_no_faults_is_perfect_media () =
  (* [faults = None] and all-zero rates must both be byte-identical to the
     historical perfect-media crash — the zero-overhead guard. *)
  let run faults =
    let m = Memsys.create { (cfg ()) with Memsys.faults } in
    fault_workload m;
    Memsys.crash m;
    (Memsys.image m, Memsys.poisoned_lines m)
  in
  let i1, p1 = run None in
  let i2, p2 = run (Some Memsys.no_faults) in
  Alcotest.(check (array int)) "byte-identical images" i1 i2;
  Alcotest.(check (list int)) "no poison without faults" [] p1;
  Alcotest.(check (list int)) "no poison with zero rates" [] p2

let test_poison_raises_and_scrub_heals () =
  let m = Memsys.create (cfg ()) in
  Memsys.store m 100 42;
  Memsys.pwb m 100;
  let seen = ref [] in
  let _sub = Memsys.subscribe m (fun ev -> seen := kind_of ev :: !seen) in
  let line = 100 / lw in
  Memsys.poison_line m line;
  Alcotest.(check bool) "poisoned" true (Memsys.is_poisoned m line);
  Alcotest.(check (list int)) "listed" [ line ] (Memsys.poisoned_lines m);
  (try
     ignore (Memsys.load m 100);
     Alcotest.fail "expected Media_error"
   with Memsys.Media_error { line = l; transient; _ } ->
     Alcotest.(check int) "faulting line" line l;
     Alcotest.(check bool) "hard fault" false transient);
  (* Oracle views deliberately bypass poison. *)
  Alcotest.(check int) "persisted bypasses" 42 (Memsys.persisted m 100);
  Alcotest.(check int) "peek bypasses" 42 (Memsys.peek m 100);
  Memsys.scrub_line m line;
  Alcotest.(check bool) "healed" false (Memsys.is_poisoned m line);
  Alcotest.(check int) "content lost by scrub" 0 (Memsys.load m 100);
  Alcotest.(check bool)
    "scrub published" true
    (List.mem "media-scrub" !seen)

let test_transient_fault_one_shot () =
  let m = Memsys.create (cfg ()) in
  Memsys.poke_persisted m 200 7;
  Memsys.arm_transient_fault m (200 / lw);
  (try
     ignore (Memsys.load m 200);
     Alcotest.fail "expected transient Media_error"
   with Memsys.Media_error { transient; _ } ->
     Alcotest.(check bool) "transient" true transient);
  (* The fault disarmed with the first raise: the retry succeeds. *)
  Alcotest.(check int) "retry heals" 7 (Memsys.load m 200)

let test_reset_to_image_clears_planted_faults () =
  let m = Memsys.create (cfg ()) in
  Memsys.poke_persisted m 64 9;
  let img = Memsys.image m in
  Memsys.poison_line m (64 / lw);
  Memsys.arm_transient_fault m (72 / lw);
  Memsys.reset_to_image m img;
  Alcotest.(check (list int)) "poison cleared" [] (Memsys.poisoned_lines m);
  Alcotest.(check int) "loads cleanly" 9 (Memsys.load m 64);
  Alcotest.(check int) "transient cleared" 0 (Memsys.load m 72)

(* ------------------------------------------------------------------ *)
(* QCheck properties *)

let prop_flush_all_makes_everything_persistent =
  QCheck.Test.make ~name:"flush_all persists the full store history"
    ~count:100
    QCheck.(list (pair (int_bound 255) (int_bound 10_000)))
    (fun writes ->
      let m = Memsys.create (cfg ~evict_rate:0.1 ~sets:2 ~ways:2 ()) in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (a, v) ->
          Memsys.store m a v;
          Hashtbl.replace model a v)
        writes;
      Memsys.flush_all m;
      Hashtbl.fold (fun a v acc -> acc && Memsys.persisted m a = v) model true)

let prop_persisted_only_written_values =
  (* At any moment, the persistent value of an address is one of the values
     ever stored there (no invented values, no torn words). *)
  QCheck.Test.make ~name:"NVMM image only holds written values" ~count:100
    QCheck.(list (pair (int_bound 63) (int_bound 100)))
    (fun writes ->
      let m = Memsys.create (cfg ~evict_rate:0.4 ~sets:2 ~ways:1 ()) in
      let history = Hashtbl.create 16 in
      List.iter
        (fun (a, v) ->
          Memsys.store m a v;
          Hashtbl.replace history (a, v) ())
        writes;
      let ok = ref true in
      for a = 0 to 63 do
        let p = Memsys.persisted m a in
        if p <> 0 && not (Hashtbl.mem history (a, p)) then ok := false
      done;
      !ok)

let prop_crash_then_load_equals_persisted =
  QCheck.Test.make ~name:"after crash, load = persisted everywhere" ~count:50
    QCheck.(list (pair (int_bound 127) small_int))
    (fun writes ->
      let m = Memsys.create (cfg ~evict_rate:0.2 ~sets:4 ~ways:2 ()) in
      List.iter (fun (a, v) -> Memsys.store m a v) writes;
      let image = Array.init 128 (fun a -> Memsys.persisted m a) in
      Memsys.crash m;
      let ok = ref true in
      for a = 0 to 127 do
        if Memsys.load m a <> image.(a) then ok := false
      done;
      !ok)

let qcheck tests =
  List.map (fun t -> Gen_common.to_alcotest ~suite:"simnvm" t) tests

let () =
  Alcotest.run "simnvm"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
        ] );
      ( "addr",
        [
          Alcotest.test_case "arithmetic" `Quick test_addr_arith;
          Alcotest.test_case "align_for" `Quick test_addr_align_for;
        ] );
      ( "memsys",
        [
          Alcotest.test_case "store/load roundtrip" `Quick
            test_store_load_roundtrip;
          Alcotest.test_case "unflushed store lost on crash" `Quick
            test_unflushed_store_lost_on_crash;
          Alcotest.test_case "pwb persists" `Quick test_pwb_persists;
          Alcotest.test_case "flush_all" `Quick test_flush_all;
          Alcotest.test_case "DRAM lost on crash" `Quick
            test_dram_lost_on_crash;
          Alcotest.test_case "persisted rejects DRAM" `Quick
            test_persisted_rejects_dram;
          Alcotest.test_case "force_evict / drop_line" `Quick
            test_force_evict_and_drop;
          Alcotest.test_case "capacity eviction persists" `Quick
            test_capacity_eviction_persists;
          Alcotest.test_case "coherence under eviction" `Quick
            test_coherence_after_eviction;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "delivery order" `Quick test_pipeline_delivery;
          Alcotest.test_case "unsubscribe" `Quick test_pipeline_unsubscribe;
          Alcotest.test_case "subscriber churn" `Quick test_pipeline_churn;
          Alcotest.test_case "clear freezes stats" `Quick
            test_pipeline_clear_freezes_stats;
          Alcotest.test_case "churn allocation cost" `Quick
            test_subscriber_churn_cost;
        ] );
      ( "pcso",
        [
          Alcotest.test_case "same-line ordering holds" `Quick
            test_pcso_same_line_ordering;
          Alcotest.test_case "word-granular ablation violates" `Quick
            test_non_pcso_ablation_violates;
        ] );
      ( "eadr",
        [
          Alcotest.test_case "crash drains NVMM lines" `Quick
            test_eadr_crash_drains_cache;
          Alcotest.test_case "DRAM still volatile" `Quick
            test_eadr_does_not_drain_dram;
        ] );
      ( "costs",
        [
          Alcotest.test_case "hit vs miss" `Quick test_costs_hit_vs_miss;
          Alcotest.test_case "NVM vs DRAM miss" `Quick
            test_costs_nvm_vs_dram_miss;
          Alcotest.test_case "pwb + psync" `Quick test_costs_pwb_psync;
          Alcotest.test_case "eADR flush free" `Quick test_eadr_flush_free;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
        ] );
      ( "faults",
        [
          Alcotest.test_case "injection deterministic under a seed" `Quick
            test_fault_injection_deterministic;
          Alcotest.test_case "no-fault configs are perfect media" `Quick
            test_no_faults_is_perfect_media;
          Alcotest.test_case "poison raises, scrub heals" `Quick
            test_poison_raises_and_scrub_heals;
          Alcotest.test_case "transient fault is one-shot" `Quick
            test_transient_fault_one_shot;
          Alcotest.test_case "reset_to_image clears planted faults" `Quick
            test_reset_to_image_clears_planted_faults;
        ] );
      ( "properties",
        qcheck
          [
            prop_flush_all_makes_everything_persistent;
            prop_persisted_only_written_values;
            prop_crash_then_load_equals_persisted;
          ] );
    ]
