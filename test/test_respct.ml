(* Tests for the ResPCT core: InCLL cells, the persistent heap, the
   checkpoint runtime, crash recovery, and the end-to-end buffered durable
   linearizability property under random crash injection. *)

open Simnvm
open Simsched
open Respct

let mem_cfg ?(evict_rate = 0.0) ?(pcso = true) () =
  {
    Memsys.default_config with
    Memsys.evict_rate = evict_rate;
    pcso;
    sets = 256;
    ways = 4;
    nvm_words = 1 lsl 18;
    dram_words = 1 lsl 14;
  }

let rt_cfg ?(period_ns = 50_000.0) ?(mode = Runtime.Full) ?(flusher_pool = 4)
    ?(pipeline = false) () =
  {
    Runtime.period_ns;
    mode;
    flusher_pool;
    max_threads = 16;
    registry_per_slot = 4096;
    integrity = false;
    pipeline;
  }

(* Build a fresh world: memory, scheduler, env, runtime. *)
let fresh ?(seed = 1) ?evict_rate ?pcso ?(cfg = rt_cfg ()) () =
  let mem = Memsys.create { (mem_cfg ?evict_rate ?pcso ()) with Memsys.seed = seed } in
  let sched = Scheduler.create ~seed () in
  let env = Env.make mem sched in
  let rt = Runtime.create ~cfg env in
  (mem, sched, env, rt)

(* Run a single simulated thread body under the runtime (no coordinator). *)
let in_thread rt body =
  let tid = Runtime.spawn rt ~slot:0 (fun ctx -> body ctx) in
  ignore tid;
  match Scheduler.run (Env.sched (Runtime.env rt)) with
  | Scheduler.Completed -> ()
  | Scheduler.Crash_interrupt _ -> Alcotest.fail "unexpected crash"

(* ------------------------------------------------------------------ *)
(* InCLL *)

let test_incll_init_read_update () =
  let _mem, _sched, _env, rt = fresh () in
  in_thread rt (fun ctx ->
      let heap = Runtime.heap rt in
      let cell = Heap.alloc_incll ctx heap in
      Incll.init ctx cell 5;
      Alcotest.(check int) "init" 5 (Incll.read ctx cell);
      Incll.update ctx cell 9;
      Alcotest.(check int) "updated" 9 (Incll.read ctx cell);
      Alcotest.(check int) "backup holds old" 5
        (Simsched.Env.load ctx.Pctx.env (Incll.backup cell)))

let test_incll_logs_once_per_epoch () =
  let _mem, _sched, _env, rt = fresh () in
  in_thread rt (fun ctx ->
      let cell = Runtime.alloc_incll rt ~slot:0 10 in
      (* Epoch 0: the first update logs 10; the second must not relog. *)
      Incll.update ctx cell 11;
      Incll.update ctx cell 12;
      Alcotest.(check int) "backup is pre-epoch value" 10
        (Simsched.Env.load ctx.Pctx.env (Incll.backup cell)))

(* Note: alloc_incll runs init in the same epoch, so backup = initial value;
   the later updates in the same epoch skip logging because epoch_id already
   matches. *)

let test_incll_cells_line_resident () =
  let _mem, _sched, env, rt = fresh () in
  in_thread rt (fun ctx ->
      let heap = Runtime.heap rt in
      let lw = Env.line_words env in
      for _ = 1 to 100 do
        let cell = Heap.alloc_incll ctx heap in
        Alcotest.(check bool) "single line" true
          (Addr.same_line ~line_words:lw cell (cell + Incll.words - 1))
      done)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_free_reuse_after_checkpoint () =
  let _mem, _sched, _env, rt = fresh () in
  in_thread rt (fun ctx ->
      let heap = Runtime.heap rt in
      let a = Heap.alloc ctx heap ~words:4 in
      Heap.free ctx heap a ~words:4;
      (* Same epoch: the block must NOT be reused. *)
      let b = Heap.alloc ctx heap ~words:4 in
      Alcotest.(check bool) "no same-epoch reuse" true (a <> b);
      (* After a checkpoint the block becomes reusable. *)
      Runtime.rp rt ~slot:0 1;
      Heap.advance_epoch heap;
      let c = Heap.alloc ctx heap ~words:4 in
      Alcotest.(check int) "reused" a c)

let test_heap_out_of_memory () =
  let _mem, _sched, _env, rt = fresh () in
  in_thread rt (fun ctx ->
      let heap = Runtime.heap rt in
      Alcotest.check_raises "oom" (Failure "Heap.alloc: out of memory")
        (fun () -> ignore (Heap.alloc ctx heap ~words:(1 lsl 20))))

let test_heap_cell_packing () =
  let _mem, _sched, env, rt = fresh () in
  in_thread rt (fun _ctx ->
      let base = Runtime.alloc_incll_array rt ~slot:0 10 ~init:7 in
      let lw = Env.line_words env in
      for i = 0 to 9 do
        let cell = Heap.cell_at env base i in
        Alcotest.(check bool) "line resident" true
          (Addr.same_line ~line_words:lw cell (cell + Incll.words - 1));
        Alcotest.(check int) "initialised" 7
          (Runtime.read rt ~slot:0 cell)
      done;
      (* Distinct cells never overlap. *)
      for i = 0 to 8 do
        let a = Heap.cell_at env base i and b = Heap.cell_at env base (i + 1) in
        Alcotest.(check bool) "disjoint" true (b - a >= Incll.words)
      done)

(* ------------------------------------------------------------------ *)
(* Runtime basics *)

let test_epoch_starts_at_zero_persisted () =
  let mem, _sched, _env, rt = fresh () in
  let layout = Runtime.layout rt in
  Alcotest.(check int) "epoch 0 persisted" 0
    (Memsys.persisted mem layout.Layout.epoch_addr)

let test_checkpoint_persists_and_increments_epoch () =
  let mem, sched, _env, rt = fresh () in
  let layout = Runtime.layout rt in
  let cell = ref 0 in
  ignore
    (Runtime.spawn rt ~slot:0 (fun _ctx ->
         cell := Runtime.alloc_incll rt ~slot:0 41;
         Runtime.update rt ~slot:0 !cell 42;
         Runtime.rp rt ~slot:0 1;
         (* Checkpoint runs while we are blocked at the RP. *)
         Runtime.rp rt ~slot:0 2));
  ignore
    (Scheduler.spawn ~name:"cp" sched (fun () ->
         Scheduler.sleep sched 10_000.0;
         Runtime.run_checkpoint rt));
  (match Scheduler.run sched with
  | Scheduler.Completed -> ()
  | Scheduler.Crash_interrupt _ -> Alcotest.fail "crash");
  Alcotest.(check int) "epoch persisted" 1
    (Memsys.persisted mem layout.Layout.epoch_addr);
  Alcotest.(check int) "value persisted" 42
    (Memsys.persisted mem (Incll.record !cell));
  let st = Runtime.stats rt in
  Alcotest.(check int) "one checkpoint" 1 st.Runtime.checkpoints;
  Alcotest.(check bool) "flushed something" true (st.Runtime.flushed_addrs > 0)

let test_checkpoint_waits_for_all_threads () =
  (* A checkpoint requested at t=10us must not complete before the slowest
     thread reaches its RP at ~100us. *)
  let _mem, sched, _env, rt = fresh () in
  let cp_end = ref 0.0 in
  for slot = 0 to 2 do
    let work = float_of_int (slot + 1) *. 33_000.0 in
    ignore
      (Runtime.spawn rt ~slot (fun _ctx ->
           Scheduler.sleep sched work;
           Runtime.rp rt ~slot 1))
  done;
  ignore
    (Scheduler.spawn ~name:"cp" sched (fun () ->
         Scheduler.sleep sched 10_000.0;
         Runtime.run_checkpoint rt;
         cp_end := Scheduler.now sched));
  ignore (Scheduler.run sched);
  Alcotest.(check bool) "waited for slowest RP" true (!cp_end >= 99_000.0)

let test_rp_without_pending_checkpoint_is_cheap () =
  let _mem, sched, _env, rt = fresh () in
  let duration = ref 0.0 in
  ignore
    (Runtime.spawn rt ~slot:0 (fun _ctx ->
         let t0 = Scheduler.now sched in
         for i = 1 to 100 do
           Runtime.rp rt ~slot:0 i
         done;
         duration := Scheduler.now sched -. t0));
  ignore (Scheduler.run sched);
  (* 100 RPs, each a handful of cached accesses: well under 10us. *)
  Alcotest.(check bool) "cheap" true (!duration < 10_000.0)

let test_periodic_coordinator_runs () =
  let _mem, sched, _env, rt = fresh ~cfg:(rt_cfg ~period_ns:20_000.0 ()) () in
  Runtime.start rt;
  ignore
    (Runtime.spawn rt ~slot:0 (fun _ctx ->
         let cell = Runtime.alloc_incll rt ~slot:0 0 in
         for i = 1 to 2000 do
           Runtime.update rt ~slot:0 cell i;
           Env.compute (Runtime.env rt) 100.0;
           Runtime.rp rt ~slot:0 1
         done));
  ignore
    (Scheduler.spawn sched (fun () ->
         (* Stop the coordinator once the worker will have finished. *)
         Scheduler.sleep sched 400_000.0;
         Runtime.stop rt));
  ignore (Scheduler.run sched);
  let st = Runtime.stats rt in
  Alcotest.(check bool)
    (Printf.sprintf "several checkpoints (%d)" st.Runtime.checkpoints)
    true
    (st.Runtime.checkpoints >= 5);
  let eff = Runtime.mean_effective_period rt in
  Alcotest.(check bool) "effective period near nominal" true
    (eff >= 19_000.0 && eff <= 40_000.0)

let test_deregistered_thread_does_not_block_checkpoint () =
  let _mem, sched, _env, rt = fresh () in
  ignore (Runtime.spawn rt ~slot:0 (fun _ctx -> Env.compute (Runtime.env rt) 100.0));
  ignore
    (Scheduler.spawn ~name:"cp" sched (fun () ->
         Scheduler.sleep sched 50_000.0;
         (* Worker long gone: checkpoint must still complete. *)
         Runtime.run_checkpoint rt));
  match Scheduler.run sched with
  | Scheduler.Completed -> ()
  | Scheduler.Crash_interrupt _ -> Alcotest.fail "crash"

let test_registry_full () =
  let cfg = { (rt_cfg ()) with Runtime.registry_per_slot = 4 } in
  let _mem, _sched, _env, rt = fresh ~cfg () in
  in_thread rt (fun _ctx ->
      Alcotest.check_raises "full"
        (Failure "Runtime: InCLL registry full (slot 0, cap 4)") (fun () ->
          for i = 0 to 10 do
            ignore (Runtime.alloc_incll rt ~slot:0 i)
          done))

(* ------------------------------------------------------------------ *)
(* Crash + recovery *)

let test_crash_before_first_checkpoint_recovers_initial () =
  let mem, sched, _env, rt = fresh ~evict_rate:0.3 () in
  let layout = Runtime.layout rt in
  ignore
    (Runtime.spawn rt ~slot:0 (fun _ctx ->
         let cell = Runtime.alloc_incll rt ~slot:0 1 in
         let rec loop i =
           Runtime.update rt ~slot:0 cell i;
           Runtime.rp rt ~slot:0 1;
           loop (i + 1)
         in
         loop 0));
  Scheduler.set_crash_at sched 30_000.0;
  (match Scheduler.run sched with
  | Scheduler.Crash_interrupt _ -> ()
  | Scheduler.Completed -> Alcotest.fail "expected crash");
  Memsys.crash mem;
  let rep = Recovery.run ~threads:2 ~layout mem in
  Alcotest.(check int) "failed epoch" 0 rep.Recovery.failed_epoch;
  (* Registry length and heap cursor rolled back to the initial state. *)
  Alcotest.(check int) "registry empty" 0
    (Memsys.persisted mem
       (Incll.record (Layout.reglen_cell layout ~line_words:8 0)));
  Alcotest.(check int) "heap cursor at base" layout.Layout.heap_base
    (Memsys.persisted mem (Incll.record layout.Layout.cursor_cell))

(* The canonical crash trial: a worker updates [n_cells] InCLL counters and
   occasionally allocates; a manual coordinator checkpoints periodically and
   snapshots the persistent state inside the quiescent window of each
   checkpoint (via the [on_flushed] hook: after the flush, before the epoch
   increment — exactly the state recovery restores for a crash in the next
   epoch). After a crash at [crash_ns] + recovery, the NVMM image must equal
   the snapshot recorded for [failed_epoch]. *)
let crash_trial ?(pcso = true) ?(verified = false) ~seed ~crash_ns () =
  let cfg =
    if verified then { (rt_cfg ()) with Runtime.integrity = true }
    else rt_cfg ()
  in
  let mem, sched, _env, rt = fresh ~seed ~evict_rate:0.2 ~pcso ~cfg () in
  let layout = Runtime.layout rt in
  let n_cells = 8 in
  let cells = ref [||] in
  let snapshots = Hashtbl.create 8 in
  let observe () =
    ( Array.map (fun c -> Memsys.persisted mem (Incll.record c)) !cells,
      Memsys.persisted mem (Incll.record layout.Layout.cursor_cell),
      Memsys.persisted mem
        (Incll.record (Layout.reglen_cell layout ~line_words:8 0)) )
  in
  ignore
    (Runtime.spawn rt ~slot:0 (fun _ctx ->
         let base = Runtime.alloc_incll_array rt ~slot:0 n_cells ~init:0 in
         cells :=
           Array.init n_cells (fun i -> Heap.cell_at (Runtime.env rt) base i);
         let rng = Rng.create (seed * 7 + 1) in
         let rec loop i =
           let c = (!cells).(Rng.int rng n_cells) in
           Runtime.update rt ~slot:0 c i;
           if Rng.int rng 50 = 0 then
             ignore (Runtime.alloc_incll rt ~slot:0 i);
           if Rng.int rng 4 = 0 then Runtime.rp rt ~slot:0 1;
           loop (i + 1)
         in
         loop 1));
  ignore
    (Scheduler.spawn ~name:"cp" sched (fun () ->
         let rec loop deadline =
           Scheduler.sleep_until sched deadline;
           Runtime.run_checkpoint rt
             ~on_flushed:(fun next_epoch ->
               if Array.length !cells > 0 then
                 Hashtbl.replace snapshots next_epoch (observe ()));
           loop (deadline +. 20_000.0)
         in
         loop 20_000.0));
  Scheduler.set_crash_at sched crash_ns;
  (match Scheduler.run sched with
  | Scheduler.Crash_interrupt _ -> ()
  | Scheduler.Completed -> Alcotest.fail "expected crash");
  Memsys.crash mem;
  let rep =
    if verified then begin
      (* Perfect media: the verified scan must prove the image exact. *)
      let v = Recovery.run_verified ~layout mem in
      if not (Recovery.exact_image v.Recovery.verdict) then
        Alcotest.failf "perfect media judged %a" Recovery.pp_verdict
          v.Recovery.verdict;
      v.Recovery.vreport
    end
    else Recovery.run ~threads:2 ~layout mem
  in
  match Hashtbl.find_opt snapshots rep.Recovery.failed_epoch with
  | None -> (None, None, rep) (* crash in epoch 0: covered elsewhere *)
  | Some snap -> (Some snap, Some (observe ()), rep)

let check_trial ~seed ~crash_ns =
  match crash_trial ~seed ~crash_ns () with
  | None, _, _ -> () (* no checkpoint completed: covered elsewhere *)
  | Some (vals, cur, reg), Some (vals', cur', reg'), _rep ->
      Alcotest.(check (array int))
        (Printf.sprintf "values (seed %d)" seed)
        vals vals';
      Alcotest.(check int) "cursor" cur cur';
      Alcotest.(check int) "registry length" reg reg'
  | Some _, None, _ -> Alcotest.fail "impossible"

let test_crash_recovery_restores_last_checkpoint () =
  List.iter
    (fun seed ->
      check_trial ~seed ~crash_ns:(30_000.0 +. float_of_int (seed * 13_777)))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_recovery_idempotent () =
  let mem, sched, _env, rt = fresh ~seed:3 ~evict_rate:0.3 () in
  let layout = Runtime.layout rt in
  ignore
    (Runtime.spawn rt ~slot:0 (fun _ctx ->
         let cell = Runtime.alloc_incll rt ~slot:0 0 in
         let rec loop i =
           Runtime.update rt ~slot:0 cell i;
           Runtime.rp rt ~slot:0 1;
           loop (i + 1)
         in
         loop 1));
  ignore
    (Scheduler.spawn ~name:"cp" sched (fun () ->
         Scheduler.sleep sched 20_000.0;
         Runtime.run_checkpoint rt;
         Scheduler.sleep sched 1_000_000.0));
  Scheduler.set_crash_at sched 45_000.0;
  ignore (Scheduler.run sched);
  Memsys.crash mem;
  let _ = Recovery.run ~layout mem in
  let image1 = Array.init 4096 (fun a -> Memsys.persisted mem a) in
  let _ = Recovery.run ~layout mem in
  let image2 = Array.init 4096 (fun a -> Memsys.persisted mem a) in
  Alcotest.(check (array int)) "idempotent" image1 image2

let test_rp_ids_recovered () =
  let mem, sched, _env, rt = fresh () in
  let layout = Runtime.layout rt in
  for slot = 0 to 2 do
    ignore
      (Runtime.spawn rt ~slot (fun _ctx ->
           let rec loop () =
             Runtime.rp rt ~slot (100 + slot);
             Env.compute (Runtime.env rt) 500.0;
             loop ()
           in
           loop ()))
  done;
  ignore
    (Scheduler.spawn ~name:"cp" sched (fun () ->
         Scheduler.sleep sched 20_000.0;
         Runtime.run_checkpoint rt;
         Scheduler.sleep sched 1_000_000.0));
  Scheduler.set_crash_at sched 50_000.0;
  ignore (Scheduler.run sched);
  Memsys.crash mem;
  let rep = Recovery.run ~layout mem in
  List.iter
    (fun (slot, id) ->
      Alcotest.(check int) (Printf.sprintf "slot %d" slot) (100 + slot) id)
    rep.Recovery.rp_ids

(* Restart after recovery, continue, crash again: exercises the reflush
   seeding (rolled-back cells must be flushed by the next checkpoint of the
   restarted run). *)
let test_restart_and_second_crash () =
  let cfg = rt_cfg () in
  let mem, sched, _env, rt = fresh ~seed:11 ~evict_rate:0.25 ~cfg () in
  let layout = Runtime.layout rt in
  let cell = ref 0 in
  ignore
    (Runtime.spawn rt ~slot:0 (fun _ctx ->
         cell := Runtime.alloc_incll rt ~slot:0 0;
         let rec loop i =
           Runtime.update rt ~slot:0 !cell i;
           Runtime.rp rt ~slot:0 1;
           loop (i + 1)
         in
         loop 1));
  ignore
    (Scheduler.spawn ~name:"cp" sched (fun () ->
         Scheduler.sleep sched 20_000.0;
         Runtime.run_checkpoint rt;
         Scheduler.sleep sched 1_000_000.0));
  Scheduler.set_crash_at sched 60_000.0;
  ignore (Scheduler.run sched);
  Memsys.crash mem;
  let rep = Recovery.run ~layout mem in
  let v_recovered = Memsys.persisted mem (Incll.record !cell) in
  (* ---- restarted run ---- *)
  let sched2 = Scheduler.create ~seed:12 () in
  let env2 = Env.make mem sched2 in
  let rt2 = Runtime.restart ~cfg ~reflush:rep.Recovery.rolled_back env2 in
  let vals_done = ref 0 in
  ignore
    (Runtime.spawn rt2 ~slot:0 (fun _ctx ->
         (* The slot table remembers our RP cell; continue the counter. *)
         let rec loop i =
           Runtime.update rt2 ~slot:0 !cell i;
           Runtime.rp rt2 ~slot:0 1;
           vals_done := i;
           loop (i + 1)
         in
         loop (v_recovered + 1)));
  let snap = ref (-1) in
  ignore
    (Scheduler.spawn ~name:"cp2" sched2 (fun () ->
         Scheduler.sleep sched2 20_000.0;
         Runtime.run_checkpoint rt2;
         snap := Memsys.persisted mem (Incll.record !cell);
         Scheduler.sleep sched2 1_000_000.0));
  Scheduler.set_crash_at sched2 50_000.0;
  ignore (Scheduler.run sched2);
  Memsys.crash mem;
  let _rep2 = Recovery.run ~layout mem in
  Alcotest.(check bool) "second run checkpointed progress" true (!snap > v_recovered);
  Alcotest.(check int) "recovered to second checkpoint" !snap
    (Memsys.persisted mem (Incll.record !cell))

(* Without PCSO (word-granular write-back ablation), the same trials must
   eventually violate recovery: demonstrates InCLL's reliance on same-line
   ordering. *)
let test_non_pcso_breaks_recovery () =
  let violations = ref 0 in
  for seed = 1 to 12 do
    match
      crash_trial ~pcso:false ~seed
        ~crash_ns:(30_000.0 +. float_of_int (seed * 13_777))
        ()
    with
    | Some (vals, cur, reg), Some (vals', cur', reg'), _ ->
        if vals <> vals' || cur <> cur' || reg <> reg' then incr violations
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "found %d violations" !violations)
    true (!violations > 0)

(* Under eADR the cache sits inside the persistent domain (paper §2.1):
   checkpoints still run — the epoch still advances and addresses are still
   gathered — but the flush phase must cost zero virtual time. *)
let test_eadr_checkpoint_flush_free () =
  let cfg = rt_cfg () in
  let mem =
    Memsys.create
      { (mem_cfg ()) with Memsys.eadr = true; latency = Latency.eadr_of Latency.default }
  in
  let sched = Scheduler.create ~seed:1 () in
  let env = Env.make mem sched in
  let rt = Runtime.create ~cfg env in
  let spans = Obs.Span.create () in
  Runtime.set_spans rt spans;
  ignore
    (Runtime.spawn rt ~slot:0 (fun _ctx ->
         let cell = Runtime.alloc_incll rt ~slot:0 0 in
         let rec loop i =
           Runtime.update rt ~slot:0 cell i;
           Runtime.rp rt ~slot:0 1;
           loop (i + 1)
         in
         loop 1));
  ignore
    (Scheduler.spawn ~name:"cp" sched (fun () ->
         Scheduler.sleep sched 20_000.0;
         Runtime.run_checkpoint rt;
         Scheduler.sleep sched 1_000_000.0));
  Scheduler.set_crash_at sched 60_000.0;
  ignore (Scheduler.run sched);
  let s = Runtime.stats rt in
  Alcotest.(check bool) "checkpoint ran" true (s.Runtime.checkpoints >= 1);
  Alcotest.(check bool)
    "addresses gathered" true
    (s.Runtime.flushed_addrs > 0);
  Alcotest.check (Alcotest.float 1e-6) "flush costs nothing" 0.0 s.Runtime.flush_ns;
  Alcotest.check (Alcotest.float 1e-6)
    "flush span zero-width" 0.0
    (Obs.Span.total_ns spans "checkpoint.flush")

(* ------------------------------------------------------------------ *)
(* Integrity: checksum packing and the verified-recovery verdicts *)

let test_checksum_cell_seals () =
  (* [epoch_of] is the identity on every raw (non-integrity) epoch word,
     including the -1 bootstrap value. *)
  List.iter
    (fun e ->
      Alcotest.(check int)
        (Printf.sprintf "epoch_of is the identity on %d" e)
        e (Checksum.epoch_of e))
    [ 0; 1; 42; 123_456_789; -1 ];
  let cell = 1536 and record = 55 and backup = 44 and epoch = 7 in
  let w = Checksum.seal ~record ~backup ~epoch ~cell in
  Alcotest.(check int) "epoch packed" epoch (Checksum.epoch_of w);
  Alcotest.(check bool)
    "log certified" true
    (Checksum.check_log ~word:w ~backup ~cell);
  Alcotest.(check bool)
    "rec certified" true
    (Checksum.check_rec ~word:w ~record ~cell);
  Alcotest.(check bool)
    "log rejects a wrong backup" false
    (Checksum.check_log ~word:w ~backup:(backup + 1) ~cell);
  Alcotest.(check bool)
    "rec rejects a wrong record" false
    (Checksum.check_rec ~word:w ~record:(record + 1) ~cell);
  Alcotest.(check bool)
    "seal is address-bound" false
    (Checksum.check_log ~word:w ~backup ~cell:(cell + Incll.words));
  (* [reseal_record] replaces only the record CRC. *)
  let w' = Checksum.reseal_record w ~record:99 ~cell in
  Alcotest.(check bool)
    "resealed record certified" true
    (Checksum.check_rec ~word:w' ~record:99 ~cell);
  Alcotest.(check bool)
    "log seal untouched by reseal" true
    (Checksum.check_log ~word:w' ~backup ~cell);
  Alcotest.(check int) "epoch untouched by reseal" epoch
    (Checksum.epoch_of w');
  (* [check_log_at] probes the seal under an explicit epoch. *)
  Alcotest.(check bool)
    "log_at its own epoch" true
    (Checksum.check_log_at ~word:w ~backup ~epoch ~cell);
  Alcotest.(check bool)
    "log_at another epoch" false
    (Checksum.check_log_at ~word:w ~backup ~epoch:(epoch + 1) ~cell)

let test_checksum_metadata_seals () =
  let addr = 0 in
  let w = Checksum.seal_epoch ~epoch:5 ~addr in
  Alcotest.(check int) "epoch readable through seal" 5 (Checksum.epoch_of w);
  Alcotest.(check bool)
    "sealed word certified" true
    (Checksum.check_epoch ~word:w ~addr);
  Alcotest.(check bool)
    "raw word rejected" false
    (Checksum.check_epoch ~word:5 ~addr);
  Alcotest.(check bool)
    "single bit flip detected" false
    (Checksum.check_epoch ~word:(w lxor (1 lsl 3)) ~addr);
  Alcotest.(check bool)
    "commit code binds the epoch" true
    (Checksum.commit ~epoch:3 ~addr:1 <> Checksum.commit ~epoch:4 ~addr:1);
  Alcotest.(check bool)
    "commit code binds the address" true
    (Checksum.commit ~epoch:3 ~addr:1 <> Checksum.commit ~epoch:3 ~addr:2);
  Alcotest.(check bool)
    "regsum binds entry and address" true
    (Checksum.regsum ~entry:17 ~addr:9 <> Checksum.regsum ~entry:18 ~addr:9
    && Checksum.regsum ~entry:17 ~addr:9 <> Checksum.regsum ~entry:17 ~addr:10)

(* One counter, one checkpoint (epoch 0 -> 1), crash mid-epoch 1 with a
   deterministic cache (no evictions): the post-crash image has the cell
   quiescent under its epoch-0 seal and the metadata committed at epoch 1.
   The canvas for hand-planted damage. *)
let crash_world ~integrity () =
  let cfg = { (rt_cfg ()) with Runtime.integrity } in
  let mem, sched, _env, rt = fresh ~cfg () in
  let layout = Runtime.layout rt in
  let cell = ref 0 in
  ignore
    (Runtime.spawn rt ~slot:0 (fun _ctx ->
         cell := Runtime.alloc_incll rt ~slot:0 100;
         let rec loop i =
           Runtime.update rt ~slot:0 !cell i;
           Runtime.rp rt ~slot:0 1;
           loop (i + 1)
         in
         loop 1));
  ignore
    (Scheduler.spawn ~name:"cp" sched (fun () ->
         Scheduler.sleep sched 20_000.0;
         Runtime.run_checkpoint rt;
         Scheduler.sleep sched 1_000_000.0));
  Scheduler.set_crash_at sched 45_000.0;
  ignore (Scheduler.run sched);
  Memsys.crash mem;
  (mem, layout, !cell)

let check_verdict what expected got =
  let s v = Fmt.str "%a" Recovery.pp_verdict v in
  Alcotest.(check string) what (s expected) (s got)

let test_verified_verdict_taxonomy () =
  let mem, layout, cell = crash_world ~integrity:true () in
  let base = Memsys.image mem in
  let reset () = Memsys.reset_to_image mem base in
  let verify () = Recovery.run_verified ~layout mem in
  (* Clean image: proven exact. *)
  let v = verify () in
  Alcotest.(check int) "failed epoch" 1 v.Recovery.vreport.Recovery.failed_epoch;
  check_verdict "clean image" Recovery.Clean v.Recovery.verdict;
  Alcotest.(check bool) "clean is exact" true
    (Recovery.exact_image v.Recovery.verdict);
  let rec0 = Memsys.persisted mem (Incll.record cell) in
  let bak0 = Memsys.persisted mem (Incll.backup cell) in
  (* Torn record on a quiescent cell: the certified backup is restored —
     one epoch stale, hence a salvage, never exact. *)
  reset ();
  Memsys.poke_persisted mem (Incll.record cell) (rec0 lxor 0xDEAD);
  let v = verify () in
  check_verdict "torn record"
    (Recovery.Salvaged [ Recovery.Torn_record { cell } ])
    v.Recovery.verdict;
  Alcotest.(check int) "backup restored" bak0
    (Memsys.persisted mem (Incll.record cell));
  (* Record and backup both torn: the undo log is unprovable, the cell is
     quarantined untouched. *)
  reset ();
  Memsys.poke_persisted mem (Incll.record cell) (rec0 lxor 0xBEEF);
  Memsys.poke_persisted mem (Incll.backup cell) (bak0 lxor 0xF00D);
  let v = verify () in
  check_verdict "torn log"
    (Recovery.Salvaged [ Recovery.Torn_log { cell } ])
    v.Recovery.verdict;
  Alcotest.(check int) "quarantined, not rewritten" (rec0 lxor 0xBEEF)
    (Memsys.persisted mem (Incll.record cell));
  (* A stray backup under a quiescent cell is dead weight (the legal
     backup-before-seal crash window looks exactly like this): clean. *)
  reset ();
  Memsys.poke_persisted mem (Incll.backup cell) (bak0 lxor 1);
  check_verdict "stray backup is benign" Recovery.Clean (verify ()).Recovery.verdict;
  (* Commit record disagreeing with the certified epoch word: rewritten
     from the seal, a proven repair. *)
  reset ();
  Memsys.poke_persisted mem layout.Layout.commit_epoch_addr 0;
  let v = verify () in
  check_verdict "commit repaired"
    (Recovery.Repaired [ Recovery.Commit_repaired { epoch = 1 } ])
    v.Recovery.verdict;
  Alcotest.(check bool) "repair is exact" true
    (Recovery.exact_image v.Recovery.verdict);
  Alcotest.(check int) "commit rewritten" 1
    (Memsys.persisted mem layout.Layout.commit_epoch_addr);
  (* Epoch word seal broken but commit record certified: restored
     best-effort (the pre-bump window is indistinguishable). *)
  reset ();
  Memsys.poke_persisted mem layout.Layout.epoch_addr 1;
  let v = verify () in
  check_verdict "epoch restored"
    (Recovery.Salvaged [ Recovery.Epoch_restored { epoch = 1 } ])
    v.Recovery.verdict;
  Alcotest.(check bool) "epoch word resealed" true
    (Checksum.check_epoch
       ~word:(Memsys.persisted mem layout.Layout.epoch_addr)
       ~addr:layout.Layout.epoch_addr);
  (* Neither the epoch word nor the commit record certifiable: fail stop. *)
  reset ();
  Memsys.poke_persisted mem layout.Layout.epoch_addr 1;
  Memsys.poke_persisted mem layout.Layout.commit_crc_addr 0;
  (match (verify ()).Recovery.verdict with
  | Recovery.Unrecoverable ds
    when List.exists
           (function Recovery.Commit_broken _ -> true | _ -> false)
           ds ->
      ()
  | d -> Alcotest.failf "expected Commit_broken, got %a" Recovery.pp_verdict d)

let test_verified_media_retry_and_scrub () =
  let mem, layout, cell = crash_world ~integrity:true () in
  let base = Memsys.image mem in
  let lw = (Memsys.config mem).Memsys.line_words in
  let line = Incll.record cell / lw in
  (* Transient fault: retried with backoff, healed, still proven exact. *)
  Memsys.arm_transient_fault mem line;
  let v = Recovery.run_verified ~layout mem in
  Alcotest.(check bool) "retried" true (v.Recovery.read_retries > 0);
  Alcotest.(check bool) "exact after retry" true
    (Recovery.exact_image v.Recovery.verdict);
  (* Hard poison: retry budget exhausted, the line is scrubbed and the
     loss reported — fail-stop on content, never a hang. *)
  Memsys.reset_to_image mem base;
  Memsys.poison_line mem line;
  let v = Recovery.run_verified ~layout mem in
  (match v.Recovery.verdict with
  | Recovery.Salvaged ds
    when List.exists
           (function
             | Recovery.Media_failed { line = l } -> l = line | _ -> false)
           ds ->
      ()
  | d -> Alcotest.failf "expected Media_failed, got %a" Recovery.pp_verdict d);
  Alcotest.(check bool) "line scrubbed" false (Memsys.is_poisoned mem line)

let test_integrity_off_keeps_raw_words () =
  (* integrity=false must keep the historical raw-word representation:
     plain epochs in the global word and in every cell tag, no seal bits. *)
  let mem, layout, cell = crash_world ~integrity:false () in
  Alcotest.(check int) "raw global epoch word" 1
    (Memsys.persisted mem layout.Layout.epoch_addr);
  let w = Memsys.persisted mem (Incll.epoch_id cell) in
  Alcotest.(check int) "raw cell tag, no seal bits" 0 w;
  Alcotest.(check bool) "layout reserves no regsum region" true
    (layout.Layout.regsum_base = -1)

(* ------------------------------------------------------------------ *)
(* Condition variables under checkpointing (paper Figure 7) *)

let test_cond_wait_no_deadlock () =
  let _mem, sched, _env, rt =
    fresh ~cfg:(rt_cfg ~period_ns:15_000.0 ()) ()
  in
  Runtime.start rt;
  let m = Simsched.Mutex.create ~name:"app" () in
  let cv = Simsched.Condvar.create ~name:"app" () in
  let q = Queue.create () in
  let consumed = ref 0 in
  let n = 300 in
  ignore
    (Runtime.spawn rt ~slot:0 ~name:"consumer" (fun _ctx ->
         for _ = 1 to n do
           Runtime.rp rt ~slot:0 1;
           Simsched.Mutex.lock sched m;
           while Queue.is_empty q do
             Runtime.cond_wait rt ~slot:0 cv m
           done;
           ignore (Queue.pop q);
           incr consumed;
           Simsched.Mutex.unlock sched m
         done));
  ignore
    (Runtime.spawn rt ~slot:1 ~name:"producer" (fun _ctx ->
         for i = 1 to n do
           Runtime.rp rt ~slot:1 2;
           Env.compute (Runtime.env rt) 300.0;
           Simsched.Mutex.lock sched m;
           Queue.push i q;
           Simsched.Condvar.signal sched cv;
           Simsched.Mutex.unlock sched m
         done));
  ignore
    (Scheduler.spawn sched (fun () ->
         Scheduler.sleep sched 1_000_000.0;
         Runtime.stop rt));
  (match Scheduler.run sched with
  | Scheduler.Completed -> ()
  | Scheduler.Crash_interrupt _ -> Alcotest.fail "crash");
  Alcotest.(check int) "all consumed" n !consumed;
  Alcotest.(check bool) "checkpoints happened" true
    ((Runtime.stats rt).Runtime.checkpoints > 3)

(* ------------------------------------------------------------------ *)
(* Pipelined checkpointing: async epoch advance, double-buffered commits *)

(* Staged reclamation: a [collect_pending] snapshot detaches the epoch's
   frees from the heap; the blocks only become reusable at [release] (the
   pipelined runtime calls it at seal, after the background walk). *)
let test_heap_staged_release () =
  let _mem, _sched, _env, rt = fresh () in
  in_thread rt (fun ctx ->
      let heap = Runtime.heap rt in
      let a = Heap.alloc ctx heap ~words:4 in
      Heap.free ctx heap a ~words:4;
      let staged = Heap.collect_pending heap in
      Alcotest.(check (list int)) "staged addresses" [ a ]
        (Heap.staged_addrs staged);
      let b = Heap.alloc ctx heap ~words:4 in
      Alcotest.(check bool) "unreleased block not reused" true (a <> b);
      Alcotest.(check (list int)) "pending drained by the snapshot" []
        (Heap.staged_addrs (Heap.collect_pending heap));
      Heap.release heap staged;
      let c = Heap.alloc ctx heap ~words:4 in
      Alcotest.(check int) "released block reused" a c)

(* The same periodic-coordinator workload in both modes: the pipelined
   runtime must collapse the mutator stall (quiescence + handoff instead
   of the whole flush) and account the displaced flush as overlap. *)
let coordinator_stats ~pipeline =
  let _mem, sched, _env, rt =
    fresh ~cfg:(rt_cfg ~period_ns:20_000.0 ~pipeline ()) ()
  in
  Runtime.start rt;
  let n_cells = 64 in
  ignore
    (Runtime.spawn rt ~slot:0 (fun _ctx ->
         let base = Runtime.alloc_incll_array rt ~slot:0 n_cells ~init:0 in
         let cells =
           Array.init n_cells (fun i -> Heap.cell_at (Runtime.env rt) base i)
         in
         for i = 1 to 2000 do
           Runtime.update rt ~slot:0 cells.(i mod n_cells) i;
           Env.compute (Runtime.env rt) 100.0;
           Runtime.rp rt ~slot:0 1
         done;
         Runtime.stop rt));
  ignore (Scheduler.run sched);
  Runtime.stats rt

let test_pipeline_stall_collapse () =
  let classic = coordinator_stats ~pipeline:false in
  let pipe = coordinator_stats ~pipeline:true in
  Alcotest.(check bool) "classic checkpointed" true
    (classic.Runtime.checkpoints >= 5);
  Alcotest.(check bool) "pipeline checkpointed" true
    (pipe.Runtime.checkpoints >= 5);
  Alcotest.check (Alcotest.float 1e-6) "classic has no overlap" 0.0
    classic.Runtime.overlap_ns;
  Alcotest.(check bool) "pipeline overlaps the flush" true
    (pipe.Runtime.overlap_ns > 0.0);
  let per s =
    s.Runtime.stall_ns /. float_of_int (max 1 s.Runtime.checkpoints)
  in
  Alcotest.(check bool)
    (Printf.sprintf "stall collapsed (%.0f -> %.0f ns/ckpt)" (per classic)
       (per pipe))
    true
    (per pipe < 0.5 *. per classic)

(* Double-buffered commits (integrity mode): consecutive seals alternate
   slots by epoch parity, so after epochs 1 and 2 slot B holds the odd
   seal, slot A the even one, and both CRCs certify. *)
let test_pipeline_commit_slots_alternate () =
  let cfg = { (rt_cfg ~pipeline:true ()) with Runtime.integrity = true } in
  let mem, sched, _env, rt = fresh ~cfg () in
  let layout = Runtime.layout rt in
  ignore
    (Runtime.spawn rt ~slot:0 (fun _ctx ->
         let cell = Runtime.alloc_incll rt ~slot:0 0 in
         for i = 1 to 400 do
           Runtime.update rt ~slot:0 cell i;
           Env.compute (Runtime.env rt) 100.0;
           Runtime.rp rt ~slot:0 1
         done;
         Runtime.stop rt));
  ignore
    (Scheduler.spawn ~name:"cp" sched (fun () ->
         Scheduler.sleep sched 10_000.0;
         Runtime.run_checkpoint rt;
         Scheduler.sleep sched 10_000.0;
         Runtime.run_checkpoint rt));
  (match Scheduler.run sched with
  | Scheduler.Completed -> ()
  | Scheduler.Crash_interrupt _ -> Alcotest.fail "crash");
  Alcotest.(check int) "epoch sealed at 2" 2
    (Checksum.epoch_of (Memsys.persisted mem layout.Layout.epoch_addr));
  let ea = Memsys.persisted mem layout.Layout.commit_epoch_addr in
  let eb = Memsys.persisted mem layout.Layout.commit2_epoch_addr in
  Alcotest.(check int) "slot A holds the even seal" 2 ea;
  Alcotest.(check int) "slot B holds the odd seal" 1 eb;
  Alcotest.(check int) "slot A CRC certifies"
    (Checksum.commit ~epoch:2 ~addr:layout.Layout.commit_epoch_addr)
    (Memsys.persisted mem layout.Layout.commit_crc_addr);
  Alcotest.(check int) "slot B CRC certifies"
    (Checksum.commit ~epoch:1 ~addr:layout.Layout.commit2_epoch_addr)
    (Memsys.persisted mem layout.Layout.commit2_crc_addr)

(* The pipelined crash trial: same shape as [crash_trial], but the oracle
   snapshots a host-side mirror of the counters instead of persisted
   reads — at the pipelined quiescent point (the handoff) the epoch's
   lines are still being flushed in the background, so persisted reads
   would be premature; the mirror is what the completed walk promises. *)
let pipeline_crash_trial ?(verified = false) ~seed ~crash_ns () =
  let cfg =
    { (rt_cfg ~pipeline:true ()) with Runtime.integrity = verified }
  in
  let mem, sched, _env, rt = fresh ~seed ~evict_rate:0.2 ~cfg () in
  let layout = Runtime.layout rt in
  let n_cells = 8 in
  let cells = ref [||] in
  let mirror = Array.make n_cells 0 in
  let snapshots = Hashtbl.create 8 in
  ignore
    (Runtime.spawn rt ~slot:0 (fun _ctx ->
         let base = Runtime.alloc_incll_array rt ~slot:0 n_cells ~init:0 in
         cells :=
           Array.init n_cells (fun i -> Heap.cell_at (Runtime.env rt) base i);
         let rng = Rng.create (seed * 7 + 1) in
         let rec loop i =
           let k = Rng.int rng n_cells in
           Runtime.update rt ~slot:0 (!cells).(k) i;
           mirror.(k) <- i;
           if Rng.int rng 50 = 0 then
             ignore (Runtime.alloc_incll rt ~slot:0 i);
           if Rng.int rng 4 = 0 then Runtime.rp rt ~slot:0 1;
           loop (i + 1)
         in
         loop 1));
  ignore
    (Scheduler.spawn ~name:"cp" sched (fun () ->
         let rec loop deadline =
           Scheduler.sleep_until sched deadline;
           Runtime.run_checkpoint rt ~on_flushed:(fun next_epoch ->
               if Array.length !cells > 0 then
                 Hashtbl.replace snapshots next_epoch (Array.copy mirror));
           loop (deadline +. 20_000.0)
         in
         loop 20_000.0));
  Scheduler.set_crash_at sched crash_ns;
  (match Scheduler.run sched with
  | Scheduler.Crash_interrupt _ -> ()
  | Scheduler.Completed -> Alcotest.fail "expected crash");
  Memsys.crash mem;
  let rep =
    if verified then begin
      let v = Recovery.run_verified ~layout mem in
      if not (Recovery.exact_image v.Recovery.verdict) then
        Alcotest.failf "perfect media judged %a" Recovery.pp_verdict
          v.Recovery.verdict;
      v.Recovery.vreport
    end
    else Recovery.run ~threads:2 ~layout mem
  in
  match Hashtbl.find_opt snapshots rep.Recovery.failed_epoch with
  | None -> None (* crash in the creation epoch *)
  | Some snap ->
      Some
        ( snap,
          Array.map (fun c -> Memsys.persisted mem (Incll.record c)) !cells )

let check_pipeline_trial ?verified ~seed ~crash_ns () =
  match pipeline_crash_trial ?verified ~seed ~crash_ns () with
  | None -> ()
  | Some (snap, got) ->
      Alcotest.(check (array int))
        (Printf.sprintf "values (seed %d)" seed)
        snap got

let test_pipeline_crash_recovery () =
  List.iter
    (fun seed ->
      check_pipeline_trial ~seed
        ~crash_ns:(30_000.0 +. float_of_int (seed * 13_777))
        ())
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* Random crash points through the two-slot verified scan: every image —
   including crashes mid-overlap and between the commit-slot seals — must
   be judged exact on perfect media and restore the snapshot. *)
let test_pipeline_verified_crash_recovery () =
  List.iter
    (fun seed ->
      check_pipeline_trial ~verified:true ~seed
        ~crash_ns:(30_000.0 +. float_of_int (seed * 17_333))
        ())
    [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* QCheck: the headline buffered-durable-linearizability property *)

let prop_recovery_equals_last_checkpoint =
  QCheck.Test.make ~name:"recovery restores exactly the last checkpoint"
    ~count:25
    (Gen_common.arb_crash_case ())
    (fun c ->
      match
        crash_trial ~seed:c.Gen_common.seed ~crash_ns:(Gen_common.crash_ns c) ()
      with
      | None, _, _ -> true
      | Some s, Some r, _ -> s = r
      | Some _, None, _ -> false)

(* Same property through the verified scan: on perfect media it must both
   judge the image exact and restore the identical state. *)
let prop_verified_recovery_exact_on_clean_media =
  QCheck.Test.make
    ~name:"verified recovery exact + equal on perfect media" ~count:12
    (Gen_common.arb_crash_case ())
    (fun c ->
      match
        crash_trial ~verified:true ~seed:c.Gen_common.seed
          ~crash_ns:(Gen_common.crash_ns c) ()
      with
      | None, _, _ -> true
      | Some s, Some r, _ -> s = r
      | Some _, None, _ -> false)

(* Observable equivalence of the two checkpointing modes: for the same
   generated workload and crash time, pipeline-on and pipeline-off must
   both recover exactly the state their last checkpoint promised — the
   durability contract is mode-independent even though the pipelined run
   crashes in different protocol windows (mid-walk, between the slot
   seals, post-advance). *)
let prop_pipeline_classic_equivalent =
  QCheck.Test.make
    ~name:"pipeline and classic recover their last checkpoints alike"
    ~count:15
    (Gen_common.arb_crash_case ())
    (fun c ->
      let classic_ok =
        match
          crash_trial ~seed:c.Gen_common.seed
            ~crash_ns:(Gen_common.crash_ns c) ()
        with
        | None, _, _ -> true
        | Some s, Some r, _ -> s = r
        | Some _, None, _ -> false
      in
      let pipeline_ok =
        match
          pipeline_crash_trial ~seed:c.Gen_common.seed
            ~crash_ns:(Gen_common.crash_ns c) ()
        with
        | None -> true
        | Some (snap, got) -> snap = got
      in
      classic_ok && pipeline_ok)

let qcheck tests =
  List.map (fun t -> Gen_common.to_alcotest ~suite:"respct" t) tests

let () =
  Alcotest.run "respct"
    [
      ( "incll",
        [
          Alcotest.test_case "init/read/update" `Quick
            test_incll_init_read_update;
          Alcotest.test_case "logs once per epoch" `Quick
            test_incll_logs_once_per_epoch;
          Alcotest.test_case "cells line-resident" `Quick
            test_incll_cells_line_resident;
        ] );
      ( "heap",
        [
          Alcotest.test_case "free/reuse after checkpoint" `Quick
            test_heap_free_reuse_after_checkpoint;
          Alcotest.test_case "out of memory" `Quick test_heap_out_of_memory;
          Alcotest.test_case "cell packing" `Quick test_heap_cell_packing;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "epoch 0 persisted at create" `Quick
            test_epoch_starts_at_zero_persisted;
          Alcotest.test_case "checkpoint persists + increments" `Quick
            test_checkpoint_persists_and_increments_epoch;
          Alcotest.test_case "checkpoint waits for all threads" `Quick
            test_checkpoint_waits_for_all_threads;
          Alcotest.test_case "RP cheap without pending checkpoint" `Quick
            test_rp_without_pending_checkpoint_is_cheap;
          Alcotest.test_case "periodic coordinator" `Quick
            test_periodic_coordinator_runs;
          Alcotest.test_case "deregistered thread not awaited" `Quick
            test_deregistered_thread_does_not_block_checkpoint;
          Alcotest.test_case "registry full" `Quick test_registry_full;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash before first checkpoint" `Quick
            test_crash_before_first_checkpoint_recovers_initial;
          Alcotest.test_case "restores last checkpoint (8 seeds)" `Quick
            test_crash_recovery_restores_last_checkpoint;
          Alcotest.test_case "idempotent" `Quick test_recovery_idempotent;
          Alcotest.test_case "RP ids recovered" `Quick test_rp_ids_recovered;
          Alcotest.test_case "restart and second crash" `Quick
            test_restart_and_second_crash;
          Alcotest.test_case "non-PCSO ablation breaks recovery" `Quick
            test_non_pcso_breaks_recovery;
          Alcotest.test_case "eADR checkpoint flush free" `Quick
            test_eadr_checkpoint_flush_free;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "cell seal round-trips" `Quick
            test_checksum_cell_seals;
          Alcotest.test_case "metadata seal round-trips" `Quick
            test_checksum_metadata_seals;
          Alcotest.test_case "verdict taxonomy" `Quick
            test_verified_verdict_taxonomy;
          Alcotest.test_case "media retry + scrub" `Quick
            test_verified_media_retry_and_scrub;
          Alcotest.test_case "integrity off keeps raw words" `Quick
            test_integrity_off_keeps_raw_words;
        ] );
      ( "condvar",
        [
          Alcotest.test_case "cond_wait under checkpoints" `Quick
            test_cond_wait_no_deadlock;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "heap staged release" `Quick
            test_heap_staged_release;
          Alcotest.test_case "mutator stall collapses" `Quick
            test_pipeline_stall_collapse;
          Alcotest.test_case "commit slots alternate" `Quick
            test_pipeline_commit_slots_alternate;
          Alcotest.test_case "crash recovery (8 seeds)" `Quick
            test_pipeline_crash_recovery;
          Alcotest.test_case "verified crash recovery (4 seeds)" `Quick
            test_pipeline_verified_crash_recovery;
        ] );
      ( "properties",
        qcheck
          [
            prop_recovery_equals_last_checkpoint;
            prop_verified_recovery_exact_on_clean_media;
            prop_pipeline_classic_equivalent;
          ] );
    ]
