(* Filemem backend tests.

   The differential property drives one seeded op sequence through two
   [Simnvm.Backend.t] records — Memsys wrapped by [of_memsys], and a
   file-backed Filemem image — and demands they agree on every loaded
   value, on the shared stats counters and on the durable NVMM image
   after a psync (and after a simulated crash). Both worlds run with
   spontaneous eviction off and the Memsys cache sized so no capacity
   eviction fires: eviction policy is exactly where the two are allowed
   to differ (Memsys models a finite cache, the file backend an
   unbounded mirror), so the property pins everything else.

   The rest covers the self-describing header (round-trip, rejection of
   short/garbled files) and the satellite requirement that a truncated
   image grades into the recovery damage taxonomy instead of escaping
   as a raw Unix/Invalid_argument exception. *)

module M = Simnvm.Memsys
module B = Simnvm.Backend
module Rng = Simnvm.Rng

let line_words = 8
let nvm_words = 4096
let dram_words = 512

let mem_config =
  {
    M.default_config with
    M.nvm_words;
    M.dram_words;
    M.line_words;
    (* cache big enough that no capacity eviction can fire *)
    M.sets = 2048;
    M.ways = 4;
    M.evict_rate = 0.0;
  }

let file_config =
  {
    Filemem.default_config with
    Filemem.nvm_words;
    Filemem.dram_words;
    Filemem.line_words;
    Filemem.evict_rate = 0.0;
  }

let tmp_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "respct-test-filemem-%d-%d.img" (Unix.getpid ()) !n)

let with_file_backend ?(cfg = file_config) ?meta f =
  let path = tmp_path () in
  let fm = Filemem.create ?meta cfg ~path in
  Fun.protect
    ~finally:(fun () ->
      Filemem.close fm;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f fm)

(* ------------------------------------------------------------------ *)
(* Differential parity. *)

type op = Store of int * int | Load of int | Pwb of int | Psync

let pp_op ppf = function
  | Store (a, v) -> Fmt.pf ppf "store %d %d" a v
  | Load a -> Fmt.pf ppf "load %d" a
  | Pwb a -> Fmt.pf ppf "pwb %d" a
  | Psync -> Fmt.pf ppf "psync"

(* Word addresses over both regions; pwb only targets NVMM (write-back
   of volatile lines is a no-op on the file backend by design). *)
let ops_of_seed ~n seed =
  let rng = Rng.create seed in
  let nvm_addr () = Rng.int rng nvm_words in
  let any_addr () =
    if Rng.int rng 4 = 0 then nvm_words + Rng.int rng dram_words
    else nvm_addr ()
  in
  List.init n (fun _ ->
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 -> Store (any_addr (), Rng.int rng 1_000_000)
      | 4 | 5 -> Load (any_addr ())
      | 6 | 7 -> Pwb (nvm_addr ())
      | 8 -> Psync
      | _ -> Load (nvm_addr ()))

let arb_parity_seed ~n =
  QCheck.make
    ~print:(fun seed ->
      Fmt.str "@[<v>parity seed=%d n=%d:@ %a@]" seed n
        (Fmt.list ~sep:Fmt.sp pp_op) (ops_of_seed ~n seed))
    QCheck.Gen.(1 -- 10_000)

let run_op (b : B.t) = function
  | Store (a, v) ->
      b.B.store a v;
      None
  | Load a -> Some (b.B.load a)
  | Pwb a ->
      b.B.pwb a;
      None
  | Psync ->
      b.B.psync ();
      None

let parity_prop seed =
  let ops = ops_of_seed ~n:400 seed in
  let m = M.create mem_config in
  let bm = B.of_memsys m in
  with_file_backend (fun fm ->
      let bf = Filemem.backend fm in
      List.iteri
        (fun i op ->
          let rm = run_op bm op and rf = run_op bf op in
          if rm <> rf then
            QCheck.Test.fail_reportf "op %d (%a): memsys=%a filemem=%a" i pp_op
              op
              Fmt.(option ~none:(any "()") int)
              rm
              Fmt.(option ~none:(any "()") int)
              rf)
        ops;
      bm.B.psync ();
      bf.B.psync ();
      for a = 0 to nvm_words - 1 do
        let dm = bm.B.persisted a and df = bf.B.persisted a in
        if dm <> df then
          QCheck.Test.fail_reportf
            "durable image diverges at %d after final psync: memsys=%d \
             filemem=%d"
            a dm df
      done;
      let sm = M.stats m and sf = Filemem.stats fm in
      let counters (s : Simnvm.Stats.t) =
        Simnvm.Stats.(s.loads, s.stores, s.pwbs, s.psyncs)
      in
      if counters sm <> counters sf then
        QCheck.Test.fail_reportf
          "stats diverge: memsys loads/stores/pwbs/psyncs=%a filemem=%a"
          Fmt.(Dump.pair int (Dump.pair int (Dump.pair int int)))
          (let a, b, c, d = counters sm in
           (a, (b, (c, d))))
          Fmt.(Dump.pair int (Dump.pair int (Dump.pair int int)))
          (let a, b, c, d = counters sf in
           (a, (b, (c, d))));
      (* a crash drops exactly the same writes on both sides *)
      bm.B.crash ();
      bf.B.crash ();
      for a = 0 to nvm_words + dram_words - 1 do
        let vm = bm.B.load a and vf = bf.B.load a in
        if vm <> vf then
          QCheck.Test.fail_reportf
            "post-crash state diverges at %d: memsys=%d filemem=%d" a vm vf
      done;
      true)

let parity_test =
  Gen_common.to_alcotest ~suite:"filemem"
    (QCheck.Test.make ~count:40 ~name:"memsys/filemem backend parity"
       (arb_parity_seed ~n:400) parity_prop)

(* ------------------------------------------------------------------ *)
(* Header round-trip and rejection. *)

let header_roundtrip () =
  let path = tmp_path () in
  let meta =
    { Filemem.max_threads = 5; Filemem.registry_per_slot = 777;
      Filemem.integrity = true }
  in
  let cfg =
    { file_config with Filemem.nvm_words = 2048; Filemem.dram_words = 256 }
  in
  let fm = Filemem.create ~meta cfg ~path in
  Filemem.persisted fm 0 |> ignore;
  Filemem.close fm;
  (match Filemem.open_existing ~path () with
  | Error e -> Alcotest.failf "reopen failed: %a" Filemem.pp_open_error e
  | Ok fm ->
      let cfg' = Filemem.config fm in
      Alcotest.(check int) "nvm_words" 2048 cfg'.Filemem.nvm_words;
      Alcotest.(check int) "dram_words" 256 cfg'.Filemem.dram_words;
      Alcotest.(check int) "line_words" line_words cfg'.Filemem.line_words;
      let meta' = Filemem.meta fm in
      Alcotest.(check int) "max_threads" 5 meta'.Filemem.max_threads;
      Alcotest.(check int) "registry_per_slot" 777
        meta'.Filemem.registry_per_slot;
      Alcotest.(check bool) "integrity" true meta'.Filemem.integrity;
      Alcotest.(check bool) "not truncated" false (Filemem.was_truncated fm);
      Filemem.close fm);
  Sys.remove path

let header_rejection () =
  let path = tmp_path () in
  let write_bytes s =
    let oc = Out_channel.open_bin path in
    Out_channel.output_string oc s;
    Out_channel.close oc
  in
  write_bytes "short";
  (match Filemem.open_existing ~path () with
  | Error (Filemem.Too_short _) -> ()
  | Error e -> Alcotest.failf "expected Too_short, got %a" Filemem.pp_open_error e
  | Ok _ -> Alcotest.fail "short file opened");
  write_bytes (String.make 4096 'x');
  (match Filemem.open_existing ~path () with
  | Error (Filemem.Bad_magic _) -> ()
  | Error e -> Alcotest.failf "expected Bad_magic, got %a" Filemem.pp_open_error e
  | Ok _ -> Alcotest.fail "garbage file opened");
  (* flip one header byte past the magic: checksum must catch it *)
  let fm = Filemem.create file_config ~path in
  Filemem.close fm;
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd 17 Unix.SEEK_SET);
  ignore (Unix.write_substring fd "\xff" 0 1);
  Unix.close fd;
  (match Filemem.open_existing ~path () with
  | Error (Filemem.Header_corrupt | Filemem.Bad_geometry _) -> ()
  | Error e ->
      Alcotest.failf "expected Header_corrupt, got %a" Filemem.pp_open_error e
  | Ok _ -> Alcotest.fail "corrupt header opened");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* psync is load-bearing: the planted elision mutant observably loses
   the write-back. *)

let mutant_elides_psync () =
  with_file_backend (fun fm ->
      let b = Filemem.backend fm in
      b.B.store 3 42;
      b.B.pwb 3;
      b.B.psync ();
      Alcotest.(check int) "durable after honest psync" 42
        (Filemem.persisted fm 3);
      Filemem.arm_mutant fm Filemem.Elide_psync;
      b.B.store 3 43;
      b.B.pwb 3;
      b.B.psync ();
      Alcotest.(check int) "elided psync leaves old durable value" 42
        (Filemem.persisted fm 3);
      Alcotest.(check int) "coherent view still sees the store" 43 (b.B.load 3))

(* ------------------------------------------------------------------ *)
(* Truncation grades into the damage taxonomy (satellite): a checkpointed
   image cut short must reopen (sparse regrowth), flag [was_truncated],
   and verified recovery must return a graded verdict — never escape
   with a raw exception. *)

let small_meta =
  { Filemem.max_threads = 1; Filemem.registry_per_slot = 256;
    Filemem.integrity = true }

let small_cfg =
  { file_config with Filemem.nvm_words = 8192; Filemem.dram_words = 1024 }

(* Run a tiny checkpointed workload against [path] and leave the file on
   disk (closed). *)
let build_checkpointed_image path =
  let fm = Filemem.create ~meta:small_meta small_cfg ~path in
  let sched = Simsched.Scheduler.create ~seed:11 () in
  let env = Simsched.Env.make_backend (Filemem.backend fm) sched in
  let rcfg =
    {
      Respct.Runtime.default_config with
      Respct.Runtime.max_threads = 1;
      Respct.Runtime.registry_per_slot = 256;
      Respct.Runtime.integrity = true;
    }
  in
  let rt = Respct.Runtime.create ~cfg:rcfg env in
  let cells = ref None in
  let done_ = ref false in
  ignore
    (Simsched.Scheduler.spawn ~name:"coord" sched (fun () ->
         while Option.is_none !cells do
           Simsched.Scheduler.sleep sched 500.0
         done;
         for _ = 1 to 3 do
           Simsched.Scheduler.sleep sched 10_000.0;
           Respct.Runtime.run_checkpoint rt
         done;
         done_ := true));
  ignore
    (Respct.Runtime.spawn ~name:"w" rt ~slot:0 (fun _ctx ->
         let base = Respct.Runtime.alloc_incll_array rt ~slot:0 8 ~init:0 in
         cells := Some base;
         let rng = Rng.create 23 in
         while not !done_ do
           let cell =
             Respct.Heap.cell_at_words ~line_words base (Rng.int rng 8)
           in
           Respct.Runtime.update rt ~slot:0 cell
             (Respct.Runtime.read rt ~slot:0 cell + 1);
           Respct.Runtime.rp rt ~slot:0 1
         done));
  (match Simsched.Scheduler.run sched with
  | Simsched.Scheduler.Completed | Simsched.Scheduler.Crash_interrupt _ -> ());
  Filemem.close fm

let verify_reopened path =
  match Filemem.open_existing ~path () with
  | Error e -> Alcotest.failf "reopen failed: %a" Filemem.pp_open_error e
  | Ok fm ->
      Fun.protect
        ~finally:(fun () -> Filemem.close fm)
        (fun () ->
          let meta = Filemem.meta fm in
          let cfg = Filemem.config fm in
          let layout =
            Respct.Layout.v ~integrity:meta.Filemem.integrity
              ~line_words:cfg.Filemem.line_words
              ~nvm_words:cfg.Filemem.nvm_words
              ~max_threads:meta.Filemem.max_threads
              ~registry_per_slot:meta.Filemem.registry_per_slot ()
          in
          let v =
            Respct.Recovery.run_verified_backend ~layout (Filemem.backend fm)
          in
          (Filemem.was_truncated fm, v))

let truncation_grades () =
  let path = tmp_path () in
  build_checkpointed_image path;
  (* sanity: the intact image verifies exactly *)
  let truncated, v = verify_reopened path in
  Alcotest.(check bool) "intact image not truncated" false truncated;
  Alcotest.(check bool)
    "intact image verifies exactly" true
    (Respct.Recovery.exact_image v.Respct.Recovery.verdict);
  (* now cut the file at several points; each must reopen and grade *)
  let full = (Unix.stat path).Unix.st_size in
  List.iter
    (fun frac ->
      let cut = max ((16 + 2 + line_words) * 8) (full * frac / 4) in
      Unix.truncate path cut;
      let truncated, v = verify_reopened path in
      Alcotest.(check bool)
        (Printf.sprintf "cut to %d/4 flagged as truncated" frac)
        true truncated;
      (* any graded verdict is acceptable; escaping exceptions are not *)
      ignore v.Respct.Recovery.verdict)
    [ 3; 2; 1; 0 ];
  Sys.remove path

let () =
  Alcotest.run "filemem"
    [
      ("parity", [ parity_test ]);
      ( "header",
        [
          Alcotest.test_case "round-trip" `Quick header_roundtrip;
          Alcotest.test_case "rejection" `Quick header_rejection;
        ] );
      ( "mutant",
        [ Alcotest.test_case "psync elision observable" `Quick
            mutant_elides_psync ] );
      ( "truncation",
        [ Alcotest.test_case "grades into taxonomy" `Quick truncation_grades ]
      );
    ]
