(* Tests for the experiment harness: workload drivers produce sane
   measurements, the eADR ablation makes flushes free, the table renderer
   is well-formed, and Loc_report finds the sources. *)

let tiny =
  {
    Harness.Experiments.small with
    Harness.Experiments.sweep_threads = [ 2 ];
    duration_ns = 100_000.0;
    map_prefill = 400;
    buckets = 200;
    queue_prefill = 50;
    period_ns = 25_000.0;
    fig10_threads = 2;
    fig12_buckets = [ 400 ];
    recovery_threads = 2;
  }

let test_map_point_sane () =
  List.iter
    (fun kind ->
      let r, _ =
        Harness.Experiments.map_point ~update_pct:50 tiny kind ~threads:2
      in
      Alcotest.(check bool)
        (Harness.Systems.name_of kind ^ " throughput positive")
        true
        (r.Harness.Workload.mops > 0.0);
      Alcotest.(check bool) "ops counted" true (r.Harness.Workload.total_ops > 0))
    Harness.Systems.map_kinds

let test_queue_point_sane () =
  List.iter
    (fun kind ->
      let r, _ = Harness.Experiments.queue_point tiny kind ~threads:2 in
      Alcotest.(check bool)
        (Harness.Systems.name_of kind ^ " throughput positive")
        true
        (r.Harness.Workload.mops > 0.0))
    Harness.Systems.queue_kinds

let test_respct_checkpoints_during_measurement () =
  let r, rt =
    Harness.Experiments.map_point ~update_pct:90 tiny Harness.Systems.Respct
      ~threads:2
  in
  ignore r;
  match rt with
  | None -> Alcotest.fail "runtime expected"
  | Some rt ->
      let s = Respct.Runtime.stats rt in
      Alcotest.(check bool)
        (Printf.sprintf "checkpoints ran (%d)" s.Respct.Runtime.checkpoints)
        true
        (s.Respct.Runtime.checkpoints >= 2);
      Alcotest.(check bool) "flushed addresses" true
        (s.Respct.Runtime.flushed_addrs > 0)

(* eADR ablation (paper section 6): with the cache in the persistent
   domain, flushes are free; ResPCT's checkpoint flush time collapses. *)
let test_eadr_ablation () =
  let run eadr =
    let p =
      {
        (Harness.Experiments.params_for tiny ~threads:2
           ~kind:Harness.Systems.Respct)
        with
        Harness.Systems.eadr;
      }
    in
    let r, rt =
      Harness.Experiments.map_point ~update_pct:90 ~params:p tiny
        Harness.Systems.Respct ~threads:2
    in
    match rt with
    | Some rt -> (r.Harness.Workload.mops, (Respct.Runtime.stats rt).Respct.Runtime.flush_ns)
    | None -> Alcotest.fail "runtime expected"
  in
  let mops_off, flush_off = run false in
  let mops_on, flush_on = run true in
  Alcotest.(check bool)
    (Printf.sprintf "eADR flush time ~0 (%.0f vs %.0f ns)" flush_on flush_off)
    true
    (flush_on < flush_off /. 10.0);
  Alcotest.(check bool) "throughput not worse under eADR" true
    (mops_on >= mops_off *. 0.9)

(* The non-PCSO ablation at the workload level: running the full ResPCT
   HashMap on word-granular write-back hardware must eventually produce a
   recovery mismatch (DESIGN.md ablation 1). Covered at cell granularity in
   test_respct; here we only ensure the flag plumbs through the harness. *)
let test_fig10_shape () =
  let rows = Harness.Experiments.fig10 ~scale:tiny () in
  Alcotest.(check int) "five configurations" 5 (List.length rows);
  List.iter
    (fun (_name, cells) -> Alcotest.(check int) "three workloads" 3 (List.length cells))
    rows;
  (* Transient<DRAM> row is the normalisation base: all 1.00 *)
  let _, base = List.hd rows in
  List.iter (fun c -> Alcotest.(check string) "unit base" "1.00" c) base

let test_fig12_rows () =
  let rows = Harness.Experiments.fig12 ~scale:tiny () in
  List.iter
    (fun (label, cells) ->
      Alcotest.(check bool) (label ^ " recovery time parses") true
        (float_of_string (List.nth cells 0) >= 0.0);
      Alcotest.(check bool) "entries scanned" true
        (int_of_string (List.nth cells 1) > 0))
    rows

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_table_render () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Harness.Table.print ~out:ppf ~title:"t" ~header:[ "a"; "b" ]
    [ ("row1", [ "1" ]); ("row2", [ "2" ]) ];
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "title present" true (contains s "== t ==");
  Alcotest.(check bool) "rows present" true
    (contains s "row1" && contains s "row2");
  (* padding: every data row has the same width *)
  let lines =
    List.filter (fun l -> String.length l > 0 && l.[0] = '|')
      (String.split_on_char '\n' s)
  in
  let widths = List.sort_uniq compare (List.map String.length lines) in
  Alcotest.(check int) "aligned" 1 (List.length widths)

let test_loc_report () =
  (* dune runs tests inside _build: the sources are one level up. *)
  let rows =
    List.concat_map
      (fun root -> Harness.Loc_report.rows ~root ())
      [ "."; ".."; "../.."; "../../.." ]
  in
  match rows with
  | [] -> Alcotest.fail "sources not found"
  | rows ->
      List.iter
        (fun (name, cells) ->
          let instrumented = int_of_string (List.nth cells 0) in
          let total = int_of_string (List.nth cells 1) in
          Alcotest.(check bool) (name ^ " counts sane") true
            (instrumented > 0 && instrumented < total))
        rows

(* ------------------------------------------------------------------ *)
(* RP advisor over recorded traces (the section 6 automation extension) *)

let traced_queue_world () =
  let mem =
    Simnvm.Memsys.create
      { Simnvm.Memsys.default_config with Simnvm.Memsys.nvm_words = 1 lsl 18 }
  in
  let sched = Simsched.Scheduler.create ~seed:3 () in
  let env = Simsched.Env.make mem sched in
  let cfg =
    {
      Respct.Runtime.period_ns = 1.0e9 (* no checkpoint during the trace *);
      flusher_pool = 2;
      mode = Respct.Runtime.Full;
      max_threads = 4;
      registry_per_slot = 4096;
      integrity = false;
      pipeline = false;
    }
  in
  let rt = Respct.Runtime.create ~cfg env in
  (mem, sched, rt)

let test_advisor_queue_war_rule () =
  let _mem, sched, rt = traced_queue_world () in
  let q = ref None in
  let value_addr = ref 0 in
  ignore
    (Respct.Runtime.spawn rt ~slot:0 (fun _ctx ->
         let queue = Pds.Queue_respct.create rt ~slot:0 in
         q := Some queue;
         Respct.Runtime.rp rt ~slot:0 1;
         for i = 1 to 20 do
           Pds.Queue_respct.enqueue queue ~slot:0 i;
           ignore (Pds.Queue_respct.dequeue queue ~slot:0);
           Respct.Runtime.rp rt ~slot:0 2
         done));
  let heap_base = (Respct.Runtime.layout rt).Respct.Layout.heap_base in
  let (), events =
    Simsched.Trace.record (Simsched.Scheduler.trace_bus sched) (fun () ->
        match Simsched.Scheduler.run sched with
        | Simsched.Scheduler.Completed -> ()
        | Simsched.Scheduler.Crash_interrupt _ -> Alcotest.fail "crash")
  in
  ignore !value_addr;
  let report =
    Harness.Rp_advisor.analyse ~addr_filter:(fun a -> a >= heap_base) events
  in
  let queue = Option.get !q in
  let head = Respct.Incll.record (Pds.Queue_respct.head_cell queue) in
  let tail = Respct.Incll.record (Pds.Queue_respct.tail_cell queue) in
  (* The rule derives exactly our instrumentation choices: head and tail
     pointers are WAR across restart points -> they are InCLL variables. *)
  Alcotest.(check bool) "head needs logging" true
    (List.mem head report.Harness.Rp_advisor.needs_logging);
  Alcotest.(check bool) "tail needs logging" true
    (List.mem tail report.Harness.Rp_advisor.needs_logging);
  Alcotest.(check bool) "segments seen" true
    (report.Harness.Rp_advisor.segments >= 20);
  Alcotest.(check bool) "write-only data exists (payload words)" true
    (report.Harness.Rp_advisor.write_only <> [])

let test_advisor_race_freedom_of_map () =
  let mem =
    Simnvm.Memsys.create
      { Simnvm.Memsys.default_config with Simnvm.Memsys.nvm_words = 1 lsl 18 }
  in
  let sched = Simsched.Scheduler.create ~seed:5 () in
  let env = Simsched.Env.make mem sched in
  let cfg =
    {
      Respct.Runtime.period_ns = 50_000.0;
      flusher_pool = 2;
      mode = Respct.Runtime.Full;
      max_threads = 4;
      registry_per_slot = 4096;
      integrity = false;
      pipeline = false;
    }
  in
  let rt = Respct.Runtime.create ~cfg env in
  Respct.Runtime.start rt;
  let m = ref None in
  (* Publication through a lock: the happens-before edge a correct pthread
     program gets from pthread_create / synchronised publication. Without
     it the checker rightly flags the init-vs-first-use accesses. *)
  let pub = Simsched.Mutex.create ~name:"publish" () in
  for w = 0 to 1 do
    ignore
      (Respct.Runtime.spawn rt ~slot:w (fun _ctx ->
           if w = 0 then
             Simsched.Mutex.with_lock sched pub (fun () ->
                 m := Some (Pds.Hashmap_respct.create rt ~slot:0 ~buckets:16));
           let rec wait_published () =
             let ready =
               Simsched.Mutex.with_lock sched pub (fun () -> !m <> None)
             in
             if not ready then begin
               Simsched.Scheduler.sleep sched 200.0;
               wait_published ()
             end
           in
           wait_published ();
           let map = Option.get !m in
           let rng = Simnvm.Rng.create (w + 11) in
           for i = 1 to 200 do
             ignore
               (Pds.Hashmap_respct.insert map ~slot:w
                  ~key:(Simnvm.Rng.int rng 64) ~value:i);
             Respct.Runtime.rp rt ~slot:w 1
           done;
           if w = 0 then Respct.Runtime.stop rt))
  done;
  let heap_base = (Respct.Runtime.layout rt).Respct.Layout.heap_base in
  let (), events =
    Simsched.Trace.record (Simsched.Scheduler.trace_bus sched) (fun () ->
        match Simsched.Scheduler.run sched with
        | Simsched.Scheduler.Completed -> ()
        | Simsched.Scheduler.Crash_interrupt _ -> Alcotest.fail "crash")
  in
  let report =
    Harness.Rp_advisor.analyse ~addr_filter:(fun a -> a >= heap_base) events
  in
  (* The lock-per-bucket map keeps the section 2.1 assumption: the shared
     structure accesses are race-free. (Per-thread RP cells and tracking
     are private by construction.) *)
  Alcotest.(check int) "no data races on the shared structure" 0
    (List.length report.Harness.Rp_advisor.races)

(* ------------------------------------------------------------------ *)
(* Determinism of the structured-results path *)

(* Two same-seed runs must produce byte-identical JSON documents: the
   simulation is deterministic and the exporter iterates only
   insertion-ordered structures (never hash tables). *)
let test_structured_results_deterministic () =
  let digest () =
    let pt =
      Harness.Experiments.map_point_obs ~update_pct:50 tiny
        Harness.Systems.Respct ~threads:2
    in
    Obs.Json.to_string (Obs.Run.document [ Obs.Run.experiment "det" [ pt ] ])
  in
  let a = digest () in
  let b = digest () in
  Alcotest.(check bool) "non-trivial output" true (String.length a > 200);
  Alcotest.(check string)
    "byte-identical documents"
    (Digest.to_hex (Digest.string a))
    (Digest.to_hex (Digest.string b))

(* ------------------------------------------------------------------ *)
(* Golden outputs pinned across the fast-path kernel rewrite *)

(* Figure 9 at the default (small) scale, captured from the tree before
   the memory-system/scheduler hot paths were rewritten. The simulation is
   seeded, so any byte of drift here means the rewrite (or a later change)
   altered observable behaviour, not just speed. *)
let fig9_golden =
  {|
== Figure 9 ==
+-----------------+-------+------+------+------+
| threads:        | 1     | 4    | 16   | 64   |
+-----------------+-------+------+------+------+
| Transient<DRAM> | 12.30 | 2.60 | 2.58 | 2.60 |
| Transient<NVMM> | 12.30 | 2.60 | 2.58 | 2.60 |
| ResPCT          | 5.17  | 2.12 | 2.16 | 2.24 |
| PMThreads       | 9.71  | 2.45 | 2.46 | 2.49 |
| Montage         | 4.21  | 2.01 | 2.08 | 2.09 |
| Clobber-NVM     | 1.46  | 1.63 | 1.62 | 1.63 |
| Quadra/Trinity  | 2.14  | 2.48 | 2.46 | 2.47 |
| FriedmanQueue   | 2.08  | 1.60 | 1.59 | 1.60 |
+-----------------+-------+------+------+------+
|}

let test_fig9_golden () =
  let buf = Buffer.create 1024 in
  let out = Format.formatter_of_buffer buf in
  let scale = Harness.Experiments.small in
  Harness.Table.print ~out ~title:"Figure 9"
    ~header:
      ("threads:"
      :: List.map string_of_int scale.Harness.Experiments.sweep_threads)
    (Harness.Experiments.fig9 ~scale ());
  Alcotest.(check string) "fig9 byte-identical" fig9_golden (Buffer.contents buf)

(* The crash-matrix smoke run: same capture, same guarantee. The verdict
   counts (boundaries and adversarial images explored per scenario) pin
   the exploration itself, not just the pass/fail bit. *)
let crashmatrix_golden =
  {|crash matrix (smoke, PCSO)
  respct-map         ops=18  boundaries=276   images=2370  ok
  respct-queue       ops=14  boundaries=193   images=1429  ok
  respct-raw         ops=18  boundaries=126   images=892   ok
  clobber-map        ops=18  boundaries=83    images=182   ok
  clobber-queue      ops=14  boundaries=139   images=353   ok
  quadra-map         ops=18  boundaries=51    images=95    ok
  quadra-queue       ops=14  boundaries=87    images=182   ok
  soft-map           ops=18  boundaries=64    images=109   ok
  friedman-queue     ops=14  boundaries=86    images=152   ok
  pmthreads-map      ops=18  boundaries=0     images=0     ok
  pmthreads-queue    ops=14  boundaries=0     images=0     ok
  montage-map        ops=18  boundaries=50    images=224   ok
  montage-queue      ops=14  boundaries=72    images=376   ok
  dali-map           ops=18  boundaries=44    images=237   ok
  schedule sweeps: 2 specs, ok
crash matrix smoke: PASS
|}

let test_crashmatrix_golden () =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let ok = Crashtest.Matrix.run Crashtest.Matrix.smoke ppf in
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "matrix passes" true ok;
  Alcotest.(check string) "verdict counts byte-identical" crashmatrix_golden
    (Buffer.contents buf)

(* The lint's JSON output is a CI artifact: the diagnostics document for
   a fixed multi-finding program is pinned byte-for-byte, which is what
   makes the `analyze --json` gate diffable. Findings are normalized
   (sorted and deduped), so the order below is a contract, not an
   accident of CFG traversal. *)
let lint_golden =
  {|{"schema":"respct-lint/v1","program":"lint-golden","errors":4,"warnings":2,"findings":[{"rule":"cross-line-torn-logging","severity":"warning","thread":"main","var":null,"lock":null,"rp":null,"site":null,"message":"thread main can exit with {a, b} dirty across 2 cache lines; a crash persists an arbitrary subset of the lines, tearing the record"},{"rule":"missing-psync-before-dependent-publish","severity":"error","thread":"main","var":"b","lock":null,"rp":null,"site":"main[2]","message":"thread main publishes persistent b at main[2] while {a} still has an unfenced pwb; without a psync the publish can persist first"},{"rule":"missing-psync-before-dependent-publish","severity":"error","thread":"main","var":"a","lock":null,"rp":null,"site":"main[7]","message":"thread main publishes persistent a at main[7] while {b} still has an unfenced pwb; without a psync the publish can persist first"},{"rule":"missing-pwb-before-restart-point","severity":"error","thread":"main","var":"a","lock":null,"rp":1,"site":"main[9]","message":"restart point 1 in thread main at main[9] can be reached with persistent a stored but never pwb'd; rollback would replay a store the image never received"},{"rule":"missing-pwb-before-restart-point","severity":"error","thread":"main","var":"b","lock":null,"rp":1,"site":"main[9]","message":"restart point 1 in thread main at main[9] can be reached with persistent b stored but never pwb'd; rollback would replay a store the image never received"},{"rule":"redundant-pwb","severity":"warning","thread":"main","var":"a","lock":null,"rp":null,"site":"main[4]","message":"pwb of a in thread main at main[4] is redundant on every path: nothing on its line can be dirty here"}]}|}

let lint_golden_prog =
  let open Analysis in
  {
    Ir.pname = "lint-golden";
    persistent = [ ("a", 0); ("b", 0) ];
    transient = [ ("t", 0) ];
    threads =
      [
        {
          Ir.tname = "main";
          body =
            [
              Ir.Assign ("a", Ir.Int 1);
              Ir.Pwb "a";
              Ir.Assign ("b", Ir.Int 1);
              Ir.Psync;
              Ir.Pwb "a";
              Ir.Pwb "b";
              Ir.Rp 0;
              Ir.Assign ("a", Ir.Int 2);
              Ir.Assign ("b", Ir.Int 2);
              Ir.Rp 1;
            ];
        };
      ];
  }

let test_lint_json_golden () =
  let render () =
    Obs.Json.to_string
      (Analysis.Lint.to_json lint_golden_prog
         (Analysis.Lint.run lint_golden_prog))
  in
  Alcotest.(check string) "lint json byte-identical" lint_golden (render ());
  Alcotest.(check string) "re-run produces the same bytes" (render ())
    (render ())

(* The static analyzer and the dynamic trace advisor automate the same
   section 3.3.2 rule from opposite ends; on the IR corpus they must
   agree (every dynamically observed WAR variable statically logged)
   and the locked corpus programs must trace race-free. *)
let test_static_dynamic_advisor_agree () =
  List.iter
    (fun (name, prog) ->
      let cc = Harness.Rp_advisor.cross_check_ir ~n_ops:6 prog in
      Alcotest.(check (list string))
        (name ^ ": no dynamic WAR outside the static plan")
        [] cc.Harness.Rp_advisor.cc_dynamic_only;
      Alcotest.(check bool)
        (name ^ ": dynamic advisor saw the WAR vars at all")
        true
        (cc.Harness.Rp_advisor.cc_dynamic_log <> []);
      Alcotest.(check int)
        (name ^ ": persistent accesses race-free")
        0
        (List.length cc.Harness.Rp_advisor.cc_races);
      Alcotest.(check bool)
        (name ^ ": restart points segmented the trace")
        true
        (cc.Harness.Rp_advisor.cc_segments > 0))
    Analysis.Corpus.all

let () =
  Alcotest.run "harness"
    [
      ( "workloads",
        [
          Alcotest.test_case "map point per system" `Quick test_map_point_sane;
          Alcotest.test_case "queue point per system" `Quick
            test_queue_point_sane;
          Alcotest.test_case "checkpoints during measurement" `Quick
            test_respct_checkpoints_during_measurement;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "eADR makes flushes free" `Quick test_eadr_ablation;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "fig10 shape" `Quick test_fig10_shape;
          Alcotest.test_case "fig12 rows" `Quick test_fig12_rows;
          Alcotest.test_case "structured results deterministic" `Quick
            test_structured_results_deterministic;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "table render" `Quick test_table_render;
          Alcotest.test_case "loc report" `Quick test_loc_report;
        ] );
      ( "goldens",
        [
          Alcotest.test_case "fig9 table" `Quick test_fig9_golden;
          Alcotest.test_case "crashmatrix smoke" `Quick test_crashmatrix_golden;
          Alcotest.test_case "lint diagnostics json" `Quick
            test_lint_json_golden;
        ] );
      ( "rp advisor",
        [
          Alcotest.test_case "queue WAR rule matches instrumentation" `Quick
            test_advisor_queue_war_rule;
          Alcotest.test_case "map trace is race-free" `Quick
            test_advisor_race_freedom_of_map;
          Alcotest.test_case "static plan contains dynamic advisor" `Quick
            test_static_dynamic_advisor_agree;
        ] );
    ]
