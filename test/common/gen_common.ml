(* Shared workload generators for the test suites.

   The structure tests (test_pds, test_baselines), the runtime tests
   (test_respct) and the crash-matrix tests (test_crashtest) all drive
   data structures with seeded random op mixes and crash the world
   somewhere in the middle. The draw logic lives here so the suites agree
   on what an "op mix" is, and so every randomized crash-injection
   property prints a replayable seed when it fails instead of an opaque
   QCheck counterexample. Finite mixes delegate to Crashtest.Workmix —
   the same generator the crashmatrix CLI explores, which keeps `--replay`
   lines valid across the test suite and the command line. *)

module Workmix = Crashtest.Workmix
module Rng = Simnvm.Rng

type map_op = Workmix.map_op =
  | Insert of int * int
  | Remove of int
  | Search of int

type queue_op = Workmix.queue_op = Enqueue of int | Dequeue

let pp_map_op = Workmix.pp_map_op
let pp_queue_op = Workmix.pp_queue_op

(* Finite replayable mixes (the crashmatrix workloads). *)
let map_ops = Workmix.map_ops
let queue_ops = Workmix.queue_ops

(* ------------------------------------------------------------------ *)
(* Infinite streams for run-until-crash workers. Each draws from the
   caller's Rng in a fixed order (key first, then the op kind), so a
   (generator, seed) pair pins the whole schedule. *)

(* Update-heavy mix of the ResPCT crash trials: remove w.p. 1/3, insert
   otherwise. *)
let update_heavy_map_op rng ~key_range ~value =
  let key = Rng.int rng key_range in
  match Rng.int rng 3 with 0 -> Remove key | _ -> Insert (key, value)

(* Uniform insert/remove/search mix of the conformance suites. *)
let uniform_map_op rng ~key_range ~value =
  let key = Rng.int rng key_range in
  match Rng.int rng 3 with
  | 0 -> Insert (key, value)
  | 1 -> Remove key
  | _ -> Search key

(* Enqueue-biased (3/5) stream: queues drain without some bias. *)
let biased_queue_op rng ~value =
  if Rng.int rng 5 < 3 then Enqueue value else Dequeue

(* Fair coin stream for the conformance suites. *)
let uniform_queue_op rng ~value = if Rng.bool rng then Enqueue value else Dequeue

(* ------------------------------------------------------------------ *)
(* QCheck arbitraries. Crash-injection cases are (seed, crash time)
   pairs; the printer emits the replay recipe so a failing property run
   tells you exactly which world to rebuild. *)

type crash_case = { seed : int; crash_us : int }

let crash_ns c = float_of_int c.crash_us *. 1_000.0

let pp_crash_case ppf c =
  Fmt.pf ppf "replay: seed=%d crash_at=%dus (crash_ns=%.0f)" c.seed c.crash_us
    (crash_ns c)

let arb_crash_case ?(max_seed = 10_000) ?(min_us = 25) ?(max_us = 300) () =
  QCheck.make
    ~print:(Fmt.str "%a" pp_crash_case)
    QCheck.Gen.(
      map2
        (fun seed crash_us -> { seed; crash_us })
        (1 -- max_seed) (min_us -- max_us))

(* A seeded finite map/queue mix: generates only the seed, derives the
   ops deterministically, and prints both so failures replay. *)
let arb_map_mix ?(key_range = 13) ?(max_seed = 10_000) ~n () =
  QCheck.make
    ~print:(fun seed ->
      Fmt.str "@[<v>map mix seed=%d n=%d:@ %a@]" seed n
        (Fmt.list ~sep:Fmt.sp pp_map_op)
        (map_ops ~key_range ~seed ~n ()))
    QCheck.Gen.(1 -- max_seed)

let arb_queue_mix ?(max_seed = 10_000) ~n () =
  QCheck.make
    ~print:(fun seed ->
      Fmt.str "@[<v>queue mix seed=%d n=%d:@ %a@]" seed n
        (Fmt.list ~sep:Fmt.sp pp_queue_op)
        (queue_ops ~seed ~n ()))
    QCheck.Gen.(1 -- max_seed)
