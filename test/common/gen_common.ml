(* Shared workload generators for the test suites.

   The structure tests (test_pds, test_baselines), the runtime tests
   (test_respct) and the crash-matrix tests (test_crashtest) all drive
   data structures with seeded random op mixes and crash the world
   somewhere in the middle. The draw logic lives here so the suites agree
   on what an "op mix" is, and so every randomized crash-injection
   property prints a replayable seed when it fails instead of an opaque
   QCheck counterexample. Finite mixes delegate to Crashtest.Workmix —
   the same generator the crashmatrix CLI explores, which keeps `--replay`
   lines valid across the test suite and the command line. *)

module Workmix = Crashtest.Workmix
module Rng = Simnvm.Rng

(* ------------------------------------------------------------------ *)
(* Per-suite QCheck seeding.

   [QCheck_alcotest.to_alcotest] seeds every property from one
   process-wide source (QCHECK_SEED, or a random self-init), so the
   cases a suite draws depend on global state shared with every other
   suite in the binary — registering a new generator or suite can shift
   the streams of unrelated, previously-green properties. Deriving the
   state from the suite and test names instead makes each property's
   stream independent (adding the litmus generators cannot reseed the
   refmodel differential) and deterministic by default, while an
   explicit QCHECK_SEED still reseeds everything for exploration. *)

let suite_seed name =
  let base =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( match int_of_string_opt (String.trim s) with
        | Some n -> n
        | None -> 0x5eed)
    | None -> 0x5eed
  in
  (* FNV-1a over the name, mixed with the base seed *)
  let h = ref (base lxor 0x811c9dc5) in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    name;
  !h

let suite_rand name = Random.State.make [| suite_seed name |]

let to_alcotest ?speed_level ~suite (test : QCheck.Test.t) =
  let (QCheck2.Test.Test cell) = test in
  let rand = suite_rand (suite ^ "/" ^ QCheck2.Test.get_name cell) in
  QCheck_alcotest.to_alcotest ?speed_level ~rand test

type map_op = Workmix.map_op =
  | Insert of int * int
  | Remove of int
  | Search of int

type queue_op = Workmix.queue_op = Enqueue of int | Dequeue

let pp_map_op = Workmix.pp_map_op
let pp_queue_op = Workmix.pp_queue_op

(* Finite replayable mixes (the crashmatrix workloads). *)
let map_ops = Workmix.map_ops
let queue_ops = Workmix.queue_ops

(* ------------------------------------------------------------------ *)
(* Infinite streams for run-until-crash workers. Each draws from the
   caller's Rng in a fixed order (key first, then the op kind), so a
   (generator, seed) pair pins the whole schedule. *)

(* Update-heavy mix of the ResPCT crash trials: remove w.p. 1/3, insert
   otherwise. *)
let update_heavy_map_op rng ~key_range ~value =
  let key = Rng.int rng key_range in
  match Rng.int rng 3 with 0 -> Remove key | _ -> Insert (key, value)

(* Uniform insert/remove/search mix of the conformance suites. *)
let uniform_map_op rng ~key_range ~value =
  let key = Rng.int rng key_range in
  match Rng.int rng 3 with
  | 0 -> Insert (key, value)
  | 1 -> Remove key
  | _ -> Search key

(* Enqueue-biased (3/5) stream: queues drain without some bias. *)
let biased_queue_op rng ~value =
  if Rng.int rng 5 < 3 then Enqueue value else Dequeue

(* Fair coin stream for the conformance suites. *)
let uniform_queue_op rng ~value = if Rng.bool rng then Enqueue value else Dequeue

(* ------------------------------------------------------------------ *)
(* QCheck arbitraries. Crash-injection cases are (seed, crash time)
   pairs; the printer emits the replay recipe so a failing property run
   tells you exactly which world to rebuild. *)

type crash_case = { seed : int; crash_us : int }

let crash_ns c = float_of_int c.crash_us *. 1_000.0

let pp_crash_case ppf c =
  Fmt.pf ppf "replay: seed=%d crash_at=%dus (crash_ns=%.0f)" c.seed c.crash_us
    (crash_ns c)

let arb_crash_case ?(max_seed = 10_000) ?(min_us = 25) ?(max_us = 300) () =
  QCheck.make
    ~print:(Fmt.str "%a" pp_crash_case)
    QCheck.Gen.(
      map2
        (fun seed crash_us -> { seed; crash_us })
        (1 -- max_seed) (min_us -- max_us))

(* A seeded finite map/queue mix: generates only the seed, derives the
   ops deterministically, and prints both so failures replay. *)
let arb_map_mix ?(key_range = 13) ?(max_seed = 10_000) ~n () =
  QCheck.make
    ~print:(fun seed ->
      Fmt.str "@[<v>map mix seed=%d n=%d:@ %a@]" seed n
        (Fmt.list ~sep:Fmt.sp pp_map_op)
        (map_ops ~key_range ~seed ~n ()))
    QCheck.Gen.(1 -- max_seed)

let arb_queue_mix ?(max_seed = 10_000) ~n () =
  QCheck.make
    ~print:(fun seed ->
      Fmt.str "@[<v>queue mix seed=%d n=%d:@ %a@]" seed n
        (Fmt.list ~sep:Fmt.sp pp_queue_op)
        (queue_ops ~seed ~n ()))
    QCheck.Gen.(1 -- max_seed)

(* ------------------------------------------------------------------ *)
(* Seeded random IR programs for the static-analysis soundness
   properties: the straight-line family must agree exactly with
   Idempotence.classify over interpreter traces, the branchy family
   must have its dynamic WAR set contained in the static one. All
   structure derives from the seed via the repo Rng, and the printer
   emits the whole program so a failing case replays from the output. *)

module Ir = Analysis.Ir

let ir_persistent_vars = [ "p0"; "p1"; "p2"; "p3" ]
let ir_transient_vars = [ "t0"; "t1" ]

let ir_choose rng l = List.nth l (Rng.int rng (List.length l))

(* Expressions: depth-bounded arithmetic over the declared universe. *)
let rec ir_gen_expr rng ~vars ~depth =
  if depth = 0 || Rng.int rng 3 = 0 then
    if Rng.bool rng then Ir.Int (Rng.int rng 10) else Ir.Var (ir_choose rng vars)
  else
    let op =
      ir_choose rng [ Ir.Add; Ir.Sub; Ir.Mul; Ir.Mod; Ir.Lt; Ir.Eq ]
    in
    Ir.Binop
      ( op,
        ir_gen_expr rng ~vars ~depth:(depth - 1),
        ir_gen_expr rng ~vars ~depth:(depth - 1) )

(* Straight-line, single-thread: assignments and restart points only. *)
let straightline_ir ~seed ~n : Ir.program =
  let rng = Rng.create seed in
  let vars = ir_persistent_vars @ ir_transient_vars in
  let next_rp = ref 0 in
  let stmt () =
    if Rng.int rng 5 = 0 then begin
      let id = !next_rp in
      incr next_rp;
      Ir.Rp id
    end
    else
      Ir.Assign (ir_choose rng vars, ir_gen_expr rng ~vars ~depth:2)
  in
  {
    Ir.pname = Fmt.str "straightline-%d" seed;
    persistent = List.map (fun v -> (v, 1)) ir_persistent_vars;
    transient = List.map (fun v -> (v, 0)) ir_transient_vars;
    threads = [ { Ir.tname = "main"; body = List.init n (fun _ -> stmt ()) } ];
  }

(* Branchy, optionally two-threaded: if/while (loops bounded by
   dedicated, never-otherwise-assigned counters so the interpreter
   terminates), balanced critical sections on one shared lock with no
   restart point inside. *)
let branchy_ir ?(threads = 2) ~seed ~n () : Ir.program =
  let rng = Rng.create seed in
  let vars = ir_persistent_vars @ ir_transient_vars in
  let next_rp = ref 0 in
  let counters = ref [] in
  let next_counter = ref 0 in
  let rec gen_block ~in_lock ~budget acc =
    if budget <= 0 then List.rev acc
    else
      let roll = Rng.int rng 10 in
      if roll < 4 then
        gen_block ~in_lock ~budget:(budget - 1)
          (Ir.Assign (ir_choose rng vars, ir_gen_expr rng ~vars ~depth:2)
          :: acc)
      else if roll < 5 && not in_lock then begin
        let id = !next_rp in
        incr next_rp;
        gen_block ~in_lock ~budget:(budget - 1) (Ir.Rp id :: acc)
      end
      else if roll < 7 then
        let cond = ir_gen_expr rng ~vars ~depth:1 in
        let a = gen_block ~in_lock ~budget:(budget / 2) [] in
        let b = gen_block ~in_lock ~budget:(budget / 2) [] in
        gen_block ~in_lock ~budget:(budget / 2) (Ir.If (cond, a, b) :: acc)
      else if roll < 9 then begin
        let c = Fmt.str "lc%d" !next_counter in
        incr next_counter;
        counters := c :: !counters;
        let body =
          gen_block ~in_lock ~budget:(budget / 2) []
          @ [ Ir.Assign (c, Ir.Binop (Ir.Add, Ir.Var c, Ir.Int 1)) ]
        in
        let loop =
          Ir.While (Ir.Binop (Ir.Lt, Ir.Var c, Ir.Int (1 + Rng.int rng 3)), body)
        in
        gen_block ~in_lock ~budget:(budget / 2)
          (loop :: Ir.Assign (c, Ir.Int 0) :: acc)
      end
      else if not in_lock then
        let body = gen_block ~in_lock:true ~budget:(budget / 2) [] in
        (* [acc] is reverse-ordered, so prepend the block reversed. *)
        gen_block ~in_lock ~budget:(budget / 2)
          (List.rev_append ((Ir.Acquire 0 :: body) @ [ Ir.Release 0 ]) acc)
      else gen_block ~in_lock ~budget:(budget - 1) (Ir.Skip :: acc)
  in
  let mk_thread i =
    { Ir.tname = Fmt.str "w%d" i; body = gen_block ~in_lock:false ~budget:n [] }
  in
  let threads = List.init (max 1 threads) mk_thread in
  {
    Ir.pname = Fmt.str "branchy-%d" seed;
    persistent = List.map (fun v -> (v, 1)) ir_persistent_vars;
    transient =
      List.map (fun v -> (v, 0)) (ir_transient_vars @ List.rev !counters);
    threads;
  }

(* Straight-line flush-aware family for the Axcheck soundness battery:
   only litmus-fragment shapes (constant stores, loads into transient
   registers, Faa-shaped RMWs, Pwb/Psync, at most one Crash compiled as
   the halt-flag assignment), so [Litmus.Axcheck.compile_ir] always
   accepts them and the Persistate claims can be judged against the
   axiomatic enumeration. 1–2 threads to also exercise the multi-writer
   demotion and the catch-the-other-thread-anywhere crash join. *)
let flushline_ir ~seed ~n : Ir.program =
  let rng = Rng.create seed in
  let nv = 2 + Rng.int rng 2 in
  let pvars = List.filteri (fun i _ -> i < nv) [ "x"; "y"; "z" ] in
  let regs = [ "r0"; "r1" ] in
  let nt = 1 + Rng.int rng 2 in
  let op () =
    match Rng.int rng 8 with
    | 0 | 1 | 2 -> Ir.Assign (ir_choose rng pvars, Ir.Int (1 + Rng.int rng 9))
    | 3 | 4 -> Ir.Pwb (ir_choose rng pvars)
    | 5 -> Ir.Psync
    | 6 -> Ir.Assign (ir_choose rng regs, Ir.Var (ir_choose rng pvars))
    | _ ->
        let v = ir_choose rng pvars in
        Ir.Assign (v, Ir.Binop (Ir.Add, Ir.Var v, Ir.Int (1 + Rng.int rng 3)))
  in
  let bodies =
    List.init nt (fun _ ->
        List.init (1 + Rng.int rng (max 1 n)) (fun _ -> op ()))
  in
  let has_crash = Rng.int rng 3 < 2 in
  let bodies =
    if not has_crash then bodies
    else
      let t = Rng.int rng nt in
      let crash = Ir.Assign (Litmus.World.halt_var, Ir.Int 1) in
      List.mapi
        (fun i b ->
          if i <> t then b
          else
            let pos = Rng.int rng (List.length b + 1) in
            List.filteri (fun j _ -> j < pos) b
            @ [ crash ]
            @ List.filteri (fun j _ -> j >= pos) b)
        bodies
  in
  {
    Ir.pname = Fmt.str "flushline-%d" seed;
    persistent = List.map (fun v -> (v, 0)) pvars;
    transient =
      List.map (fun v -> (v, 0)) regs
      @ (if has_crash then [ (Litmus.World.halt_var, 0) ] else []);
    threads =
      List.mapi
        (fun i body -> { Ir.tname = Fmt.str "t%d" i; body })
        bodies;
  }

let arb_straightline_ir ?(max_seed = 1_000_000) ~n () =
  QCheck.make
    ~print:(fun seed -> Ir.program_to_string (straightline_ir ~seed ~n))
    QCheck.Gen.(1 -- max_seed)

let arb_branchy_ir ?(max_seed = 1_000_000) ?threads ~n () =
  QCheck.make
    ~print:(fun seed -> Ir.program_to_string (branchy_ir ?threads ~seed ~n ()))
    QCheck.Gen.(1 -- max_seed)

let arb_flushline_ir ?(max_seed = 1_000_000) ~n () =
  QCheck.make
    ~print:(fun seed -> Ir.program_to_string (flushline_ir ~seed ~n))
    QCheck.Gen.(1 -- max_seed)

(* ------------------------------------------------------------------ *)
(* Litmus programs for the persistency-model fuzzer (test_litmus):
   biased toward same-line conflicts, fences and cross-line
   message-passing, with a structural shrinker. Defined in lib/litmus
   so the CLI fuzzer and the suite draw from the same distribution. *)

let arb_litmus_prog = Litmus.Gen.arb_prog
let litmus_prog_of_string = Litmus.Prog.of_string
