(* Persistency-model litmus validation (DESIGN.md section 13).

   Three layers:
   - golden allowed-state sets for every corpus entry and variant, so a
     change to the axiomatic evaluator is a visible diff here;
   - differential soundness: observed post-crash outcomes from all
     three executable worlds (kernel / ref / analyzer IR) lie inside
     the axiomatic set, on the corpus and on >= 500 fuzzed programs per
     world, with failures printed as replayable counterexample text;
   - completeness on an exhaustive small family: the set of outcomes
     the reference model can reach EQUALS the axiomatic set;
   plus the planted kernel mutant, which the fuzzer must detect, shrink
   and replay. *)

module Axiom = Litmus.Axiom
module Corpus = Litmus.Corpus
module Harness = Litmus.Harness
module Prog = Litmus.Prog
module World = Litmus.World

let entry name =
  match Corpus.find name with
  | Some e -> e
  | None -> Alcotest.failf "corpus entry %s missing" name

(* --- golden allowed-state sets -------------------------------------- *)

(* Pinned output of [Axiom.pp_outcomes] per (entry, variant): the
   worked examples of DESIGN.md section 13. [litmus --corpus -v] prints
   the same strings. *)
let goldens =
  [
    ("sb", Axiom.Pcso, "{(x=1,y=1)}");
    ("sb", Axiom.Eadr, "{(x=1,y=1)}");
    ("sb", Axiom.Ablation, "{(x=1,y=1)}");
    ("mp-fenced", Axiom.Pcso, "{(d=0,f=0) (d=1,f=0) (d=1,f=1)}");
    ("mp-fenced", Axiom.Ablation, "{(d=0,f=0) (d=1,f=0) (d=1,f=1)}");
    ( "mp-unfenced",
      Axiom.Pcso,
      "{(d=0,f=0) (d=0,f=1) (d=1,f=0) (d=1,f=1)}" );
    ("mp-unfenced", Axiom.Eadr, "{(d=0,f=0) (d=1,f=0) (d=1,f=1)}");
    (* the PCSO payoff: same-line MP forbids the lost-data outcome
       (d=0,f=1) that the word-granular ablation admits *)
    ("mp-same-line", Axiom.Pcso, "{(d=0,f=0) (d=1,f=0) (d=1,f=1)}");
    ( "mp-same-line",
      Axiom.Ablation,
      "{(d=0,f=0) (d=0,f=1) (d=1,f=0) (d=1,f=1)}" );
    (* same-line WAR: persisted states are exactly the prefix-closed
       snapshots of the store order *)
    ( "incll-war",
      Axiom.Pcso,
      "{(x=0,y=0) (x=1,y=0) (x=1,y=1) (x=2,y=1)}" );
    ("incll-war", Axiom.Eadr, "{(x=2,y=1)}");
    ( "incll-war",
      Axiom.Ablation,
      "{(x=0,y=0) (x=0,y=1) (x=1,y=0) (x=1,y=1) (x=2,y=0) (x=2,y=1)}" );
    ("commit-crash", Axiom.Pcso, "{(d=1,c=1)}");
    ("faa-contend", Axiom.Pcso, "{(x=0) (x=1) (x=2)}");
    ("pwb-no-psync", Axiom.Pcso, "{(x=1)}");
    (* lazy pwb: issued but unapplied write-back may be lost *)
    ("pwb-no-psync", Axiom.Pcso_lazy, "{(x=0) (x=1)}");
    ("eadr-noloss", Axiom.Eadr, "{(x=1,y=1)}");
    ( "eadr-noloss",
      Axiom.Pcso,
      "{(x=0,y=0) (x=0,y=1) (x=1,y=0) (x=1,y=1)}" );
    ("ablation-split", Axiom.Pcso, "{(x=0,y=0) (x=1,y=0) (x=1,y=1)}");
    ( "ablation-split",
      Axiom.Ablation,
      "{(x=0,y=0) (x=0,y=1) (x=1,y=0) (x=1,y=1)}" );
    ( "mp-chain",
      Axiom.Pcso,
      "{(a=0,b=0,c=0) (a=0,b=0,c=1) (a=1,b=0,c=0) (a=1,b=0,c=1) \
       (a=1,b=1,c=0) (a=1,b=1,c=1)}" );
  ]

let golden_allowed () =
  List.iter
    (fun (name, variant, want) ->
      let e = entry name in
      let r = Axiom.allowed ~variant e.Corpus.e_prog in
      Alcotest.(check bool)
        (Fmt.str "%s/%s complete" name (Axiom.variant_name variant))
        true r.Axiom.complete;
      Alcotest.(check string)
        (Fmt.str "%s/%s allowed set" name (Axiom.variant_name variant))
        want
        (Fmt.str "%a"
           (Axiom.pp_outcomes (Prog.locs e.Corpus.e_prog))
           r.Axiom.outcomes))
    goldens

(* Eadr <= Pcso <= Pcso_lazy and Pcso <= Ablation, on every entry: the
   variant lattice of DESIGN.md section 13. *)
let variant_inclusions () =
  List.iter
    (fun e ->
      let p = e.Corpus.e_prog in
      let set v = (Axiom.allowed ~variant:v p).Axiom.outcomes in
      let pcso = set Axiom.Pcso in
      let incl name a b =
        Alcotest.(check bool)
          (Fmt.str "%s: %s" e.Corpus.e_name name)
          true
          (Axiom.Outcomes.subset a b)
      in
      incl "eadr <= pcso" (set Axiom.Eadr) pcso;
      incl "pcso <= pcso-lazy" pcso (set Axiom.Pcso_lazy);
      incl "pcso <= ablation" pcso (set Axiom.Ablation))
    Corpus.all

let corpus_roundtrip () =
  List.iter
    (fun e ->
      match Prog.of_string (Prog.to_string e.Corpus.e_prog) with
      | Ok p ->
          Alcotest.(check bool)
            (e.Corpus.e_name ^ " round-trips")
            true
            (p = e.Corpus.e_prog)
      | Error msg -> Alcotest.failf "%s: %s" e.Corpus.e_name msg)
    Corpus.all

(* --- differential soundness ------------------------------------------ *)

let corpus_sound () =
  List.iter
    (fun e ->
      List.iter
        (fun variant ->
          List.iter
            (fun world ->
              let r =
                Harness.check ~samples:32 ~seed:7 ~world ~variant
                  e.Corpus.e_prog
              in
              Alcotest.(check bool)
                (Fmt.str "%s %s %s checked" e.Corpus.e_name
                   (World.id_name world)
                   (Axiom.variant_name variant))
                false r.Harness.r_skipped;
              match r.Harness.r_violations with
              | [] -> ()
              | v :: _ ->
                  Alcotest.failf "%s: %a" e.Corpus.e_name
                    (Harness.pp_violation (Prog.locs e.Corpus.e_prog))
                    v)
            World.all_ids)
        e.Corpus.e_variants)
    Corpus.all

(* >= 500 fuzzed programs per world; a failure prints the replay file
   verbatim, so it feeds straight into [litmus --replay]. *)
let soundness_prop world =
  QCheck.Test.make
    ~name:(Fmt.str "observed within PCSO allowed (%s world)"
             (World.id_name world))
    ~count:500 Gen_common.arb_litmus_prog
    (fun p ->
      let r =
        Harness.check ~samples:6 ~seed:11 ~world ~variant:Axiom.Pcso p
      in
      if r.Harness.r_skipped then true (* axiom state cap: nothing ran *)
      else
        match r.Harness.r_violations with
        | [] -> true
        | v :: _ ->
            QCheck.Test.fail_reportf
              "soundness violation; replay file:@.%s"
              (Harness.counterexample_to_string p v))

let gen_well_formed =
  QCheck.Test.make ~name:"generated programs well-formed" ~count:300
    Gen_common.arb_litmus_prog
    (fun p -> Prog.well_formed p)

let shrink_well_formed =
  QCheck.Test.make ~name:"shrink candidates stay well-formed" ~count:100
    Gen_common.arb_litmus_prog (fun p ->
      let ok = ref true in
      Litmus.Gen.shrink p (fun q -> if not (Prog.well_formed q) then ok := false);
      !ok)

(* --- planted mutant --------------------------------------------------- *)

(* With [Drop_same_line_order] planted the kernel runs with
   line-snapshot write-back off while the spec stays PCSO: the fuzzer
   must find a violating program, shrink it, and produce a
   counterexample that replays (also after a text round-trip, which is
   what [litmus --replay] consumes). *)
let mutant_detected () =
  Fun.protect
    ~finally:(fun () -> World.set_mutant None)
    (fun () ->
      World.set_mutant (Some World.Drop_same_line_order);
      let fz =
        Harness.fuzz ~n:60 ~seed:3 ~samples:24 ~worlds:[ World.Kernel ]
          ~variants:[ Axiom.Pcso ] ()
      in
      match fz.Harness.f_failure with
      | None ->
          Alcotest.failf
            "planted mutant survived %d fuzzed programs (%d skipped)"
            fz.Harness.f_tested fz.Harness.f_skipped
      | Some (p, v) ->
          Alcotest.(check bool)
            "violation records the planted mutant" true
            (v.Harness.v_mutant = Some World.Drop_same_line_order);
          (match Harness.replay p v with
          | `Reproduced _ -> ()
          | `Vanished o ->
              Alcotest.failf "shrunk counterexample vanished on replay: %a"
                (Axiom.pp_outcome (Prog.locs p))
                o);
          let txt = Harness.counterexample_to_string p v in
          (match Harness.counterexample_of_string txt with
          | Error msg -> Alcotest.failf "replay file did not parse: %s" msg
          | Ok (p', v') -> (
              match Harness.replay p' v' with
              | `Reproduced _ -> ()
              | `Vanished _ ->
                  Alcotest.fail
                    "parsed replay file no longer reproduces")))

(* The same fuzz budget without the mutant is clean — the detection
   above is the mutant's doing, not generator noise. *)
let mutant_clean_baseline () =
  let fz =
    Harness.fuzz ~n:60 ~seed:3 ~samples:24 ~worlds:[ World.Kernel ]
      ~variants:[ Axiom.Pcso ] ()
  in
  match fz.Harness.f_failure with
  | None -> ()
  | Some (p, v) ->
      Alcotest.failf "unexpected violation without mutant:@.%s"
        (Harness.counterexample_to_string p v)

(* --- completeness ----------------------------------------------------- *)

(* Exhaustive 2-thread family (2 ops x 1 op over {st x, st y, pwb x,
   psync}, same-line and split-line layouts): the outcomes the
   reference model can reach — all interleavings crossed with all
   write-back placements — must EQUAL the axiomatic PCSO set, both
   directions. *)
let completeness_exhaustive () =
  let layouts =
    [ [ ("x", 0, 0); ("y", 0, 1) ]; [ ("x", 0, 0); ("y", 1, 0) ] ]
  in
  let alphabet =
    [ Prog.St ("x", 1); Prog.St ("y", 1); Prog.Pwb "x"; Prog.Psync ]
  in
  let checked = ref 0 in
  List.iter
    (fun layout ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              List.iter
                (fun c ->
                  let p =
                    {
                      Prog.name = Fmt.str "exh-%d" !checked;
                      layout;
                      threads = [ [ a; b ]; [ c ] ];
                    }
                  in
                  let ax = Axiom.allowed ~variant:Axiom.Pcso p in
                  Alcotest.(check bool) "axiom complete" true ax.Axiom.complete;
                  (match World.exhaustive_ref p with
                  | None -> Alcotest.fail "exhaustive_ref hit its path cap"
                  | Some reachable ->
                      if
                        not
                          (Axiom.Outcomes.equal reachable ax.Axiom.outcomes)
                      then
                        Alcotest.failf
                          "@[<v>%s@,reachable %a@,allowed   %a@]"
                          (Prog.to_string p)
                          (Axiom.pp_outcomes (Prog.locs p))
                          reachable
                          (Axiom.pp_outcomes (Prog.locs p))
                          ax.Axiom.outcomes);
                  incr checked)
                alphabet)
            alphabet)
        alphabet)
    layouts;
  Alcotest.(check int) "family size" 128 !checked

(* --- axcheck: the static-durability soundness gate -------------------- *)

module Axcheck = Litmus.Axcheck

let axcheck_demo_clean () =
  let r = Axcheck.check Axcheck.demo in
  Alcotest.(check bool) "not skipped" false r.Axcheck.r_skipped;
  Alcotest.(check int) "no violations" 0 (List.length r.Axcheck.r_violations);
  Alcotest.(check (list string))
    "claims both WAL fields" [ "payload"; "commit" ] r.Axcheck.r_claimed;
  Alcotest.check (Alcotest.float 1e-9) "claims are empirically tight" 1.0
    (Axcheck.precision r)

let axcheck_demo_mutant () =
  (* the original's claims judged against the stripped enumeration *)
  let claims = Axcheck.static_claims Axcheck.demo in
  let r = Axcheck.check ~claims (Axcheck.strip_psync Axcheck.demo) in
  Alcotest.(check bool) "stripped demo violates" true
    (r.Axcheck.r_violations <> []);
  (* shrink, round-trip the replay file, reproduce *)
  let variant = Axiom.Pcso_lazy in
  let shrunk =
    Axcheck.minimize ~mutant:Axcheck.Strip_psync ~variant Axcheck.demo
  in
  Alcotest.(check bool) "shrunk program still violates" true
    (Axcheck.violates ~mutant:Axcheck.Strip_psync ~variant shrunk);
  Alcotest.(check bool) "shrunk no larger than the demo" true
    (List.length (Prog.locs shrunk) <= List.length (Prog.locs Axcheck.demo));
  let sc = Axcheck.static_claims shrunk in
  let sr =
    Axcheck.check ~variant ~claims:sc (Axcheck.strip_psync shrunk)
  in
  match sr.Axcheck.r_violations with
  | [] -> Alcotest.fail "shrunk claims no longer violate"
  | v :: _ -> (
      let c =
        {
          Axcheck.cx_prog = shrunk;
          cx_variant = variant;
          cx_mutant = Some Axcheck.Strip_psync;
          cx_loc = v.Axcheck.v_loc;
        }
      in
      let txt = Axcheck.counterexample_to_string c in
      match Axcheck.counterexample_of_string txt with
      | Error msg -> Alcotest.failf "replay file did not parse: %s" msg
      | Ok c' -> (
          Alcotest.(check string)
            "loc survives the round-trip" c.Axcheck.cx_loc c'.Axcheck.cx_loc;
          match Axcheck.replay c' with
          | `Reproduced -> ()
          | `Vanished -> Alcotest.fail "parsed counterexample vanished"))

let axcheck_redundant_pwb_neutral () =
  (* duplicating pwbs changes no outcome: the axiomatic gate stays
     green, so catching this mutant is the lint's (and the clean-pwb
     counter's) job *)
  let claims = Axcheck.static_claims Axcheck.demo in
  let r = Axcheck.check ~claims (Axcheck.inject_redundant_pwb Axcheck.demo) in
  Alcotest.(check int) "outcome-neutral" 0 (List.length r.Axcheck.r_violations)

let axcheck_fuzz_clean () =
  let r = Axcheck.fuzz ~n:150 ~seed:5 () in
  (match r.Axcheck.fz_failure with
  | None -> ()
  | Some c ->
      Alcotest.failf "soundness violation:@.%s"
        (Axcheck.counterexample_to_string c));
  Alcotest.(check bool) "some claims exercised" true (r.Axcheck.fz_claims > 0)

let axcheck_fuzz_mutant () =
  match Axcheck.fuzz ~n:150 ~seed:5 ~mutate:Axcheck.Strip_psync () with
  | { Axcheck.fz_failure = None; fz_tested; fz_skipped; _ } ->
      Alcotest.failf "strip-psync survived %d fuzzed programs (%d skipped)"
        fz_tested fz_skipped
  | { Axcheck.fz_failure = Some c; _ } -> (
      Alcotest.(check bool) "failure records the mutant" true
        (c.Axcheck.cx_mutant = Some Axcheck.Strip_psync);
      match Axcheck.replay c with
      | `Reproduced -> ()
      | `Vanished -> Alcotest.fail "minimized fuzz failure vanished")

let () =
  Alcotest.run "litmus"
    [
      ( "corpus",
        [
          Alcotest.test_case "golden allowed sets" `Quick golden_allowed;
          Alcotest.test_case "variant inclusions" `Quick variant_inclusions;
          Alcotest.test_case "replay text round-trips" `Quick corpus_roundtrip;
          Alcotest.test_case "sound in all worlds" `Quick corpus_sound;
        ] );
      ( "soundness",
        List.map
          (fun t -> Gen_common.to_alcotest ~suite:"litmus" t)
          [
            soundness_prop World.Kernel;
            soundness_prop World.Refm;
            soundness_prop World.Ir_mem;
            gen_well_formed;
            shrink_well_formed;
          ] );
      ( "mutant",
        [
          Alcotest.test_case "planted mutant detected, shrunk, replayed"
            `Quick mutant_detected;
          Alcotest.test_case "clean baseline without mutant" `Quick
            mutant_clean_baseline;
        ] );
      ( "completeness",
        [
          Alcotest.test_case "exhaustive family: reachable = allowed" `Quick
            completeness_exhaustive;
        ] );
      ( "axcheck",
        [
          Alcotest.test_case "WAL demo claims verified" `Quick
            axcheck_demo_clean;
          Alcotest.test_case "strip-psync shrunk and replayed" `Quick
            axcheck_demo_mutant;
          Alcotest.test_case "redundant-pwb outcome-neutral" `Quick
            axcheck_redundant_pwb_neutral;
          Alcotest.test_case "fuzz clean baseline" `Quick axcheck_fuzz_clean;
          Alcotest.test_case "fuzz detects strip-psync" `Quick
            axcheck_fuzz_mutant;
        ] );
    ]
