(* Tests for the sharded KV service layer (lib/service): deterministic
   replay of whole runs, consistent-hash routing stability, admission
   saturation behaviour, the crash-one-shard-under-load scenario, and a
   sharded-vs-single differential against the same request stream. *)

module Front = Service.Front
module Router = Service.Router
module Admission = Service.Admission
module Sched = Simsched.Scheduler

(* A config small enough that a test run takes well under a second but
   still crosses several checkpoint periods on every shard. *)
let tiny =
  {
    Front.smoke with
    Front.sessions = 60;
    requests = 6;
    keys = 4_000;
    prefill = 1_000;
  }

(* ------------------------------------------------------------------ *)
(* Determinism: equal seeds give byte-identical structured output *)

let test_same_seed_byte_identical () =
  let run () = Obs.Json.to_string (Front.to_json (Front.run tiny)) in
  let a = run () in
  let b = run () in
  Alcotest.(check string) "same seed, same bytes" a b;
  let c =
    Obs.Json.to_string
      (Front.to_json (Front.run { tiny with Front.seed = tiny.Front.seed + 1 }))
  in
  Alcotest.(check bool) "different seed, different run" true (a <> c)

(* ------------------------------------------------------------------ *)
(* Routing: adding a shard moves only ~K/(N+1) keys, all onto the new
   shard — the consistent-hashing contract. *)

let qcheck_routing_stability =
  QCheck.Test.make ~count:30 ~name:"ring stability under shard addition"
    QCheck.(pair (int_range 2 8) (int_range 0 1_000_000))
    (fun (n, key_base) ->
      let before = Router.create ~shards:n ~vnodes:64 in
      let after = Router.create ~shards:(n + 1) ~vnodes:64 in
      let nkeys = 2_000 in
      let moved = ref 0 in
      for i = 0 to nkeys - 1 do
        let key = key_base + i in
        let a = Router.route before key in
        let b = Router.route after key in
        if a <> b then begin
          incr moved;
          if b <> n then
            QCheck.Test.fail_reportf
              "key %d moved %d -> %d, not onto the new shard %d" key a b n
        end
      done;
      let expected = float_of_int nkeys /. float_of_int (n + 1) in
      let ratio = float_of_int !moved /. expected in
      if ratio > 2.5 then
        QCheck.Test.fail_reportf "moved %d keys, expected ~%.0f" !moved
          expected;
      if !moved = 0 then
        QCheck.Test.fail_reportf "no key moved when shard %d appeared" n;
      true)

let test_ring_deterministic () =
  let r1 = Router.create ~shards:5 ~vnodes:64 in
  let r2 = Router.create ~shards:5 ~vnodes:64 in
  for key = 0 to 999 do
    Alcotest.(check int)
      (Printf.sprintf "key %d" key)
      (Router.route r1 key) (Router.route r2 key)
  done

(* ------------------------------------------------------------------ *)
(* Admission control: the queue never exceeds its cap, overflow is a
   typed rejection, and accept/reject counts conserve offers. *)

let test_admission_saturation () =
  let sched = Sched.create ~seed:3 () in
  let q = Admission.create sched ~cap:32 in
  let offered = 600 in
  let taken = ref 0 in
  let rejected = ref 0 in
  let leftover = ref 0 in
  ignore
    (Sched.spawn ~name:"producer" sched (fun () ->
         for i = 1 to offered do
           (match Admission.offer q i with
           | Ok depth ->
               if depth > 32 then Alcotest.fail "depth exceeded cap"
           | Error Admission.Queue_full -> incr rejected
           | Error Admission.Shard_down -> Alcotest.fail "queue is not down");
           (* a fast producer against a slow consumer *)
           Sched.sleep sched 10.0
         done;
         leftover := List.length (Admission.close q)));
  ignore
    (Sched.spawn ~name:"consumer" sched (fun () ->
         let continue = ref true in
         while !continue do
           let batch =
             Admission.take q ~max:8 ~wait:(fun cv mu ->
                 Simsched.Condvar.wait sched cv mu)
           in
           if batch = [] then continue := false
           else begin
             taken := !taken + List.length batch;
             Sched.sleep sched 1_000.0
           end
         done));
  (match Sched.run sched with
  | Sched.Completed -> ()
  | Sched.Crash_interrupt _ -> Alcotest.fail "unexpected crash");
  Alcotest.(check bool) "saturation produced typed rejects" true (!rejected > 0);
  Alcotest.(check int) "offers conserved" offered
    (Admission.accepted q + Admission.rejected_full q);
  Alcotest.(check int) "accepted = taken + returned at close"
    (Admission.accepted q)
    (!taken + !leftover);
  Alcotest.(check bool)
    (Printf.sprintf "max depth %d within cap" (Admission.max_depth q))
    true
    (Admission.max_depth q <= 32)

let test_admission_down_typed () =
  let sched = Sched.create ~seed:4 () in
  let q = Admission.create sched ~cap:8 in
  ignore
    (Sched.spawn sched (fun () ->
         ignore (Admission.close q);
         (match Admission.offer q 1 with
         | Error Admission.Shard_down -> ()
         | Ok _ | Error Admission.Queue_full ->
             Alcotest.fail "offer to a closed queue must be Shard_down");
         Alcotest.(check int) "down rejects counted" 1
           (Admission.rejected_down q)));
  match Sched.run sched with
  | Sched.Completed -> ()
  | Sched.Crash_interrupt _ -> Alcotest.fail "unexpected crash"

(* ------------------------------------------------------------------ *)
(* Crash one shard mid-traffic: survivors keep serving and lose no
   sealed epoch; the victim recovers to its progress-log digest. *)

let test_crash_one_shard_under_load () =
  let dir = Front.fresh_dir () in
  Fun.protect
    ~finally:(fun () -> try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let cfg =
        {
          tiny with
          Front.sessions = 100;
          requests = 8;
          backend = Front.File dir;
          record_digests = true;
        }
      in
      let r = Front.run ~crash_at_ns:500_000.0 ~crash_shard:1 cfg in
      match r.Front.r_crash with
      | None -> Alcotest.fail "crash report missing"
      | Some cr ->
          Alcotest.(check bool)
            (Printf.sprintf "recovered exactly (%s)" cr.Front.cr_verdict)
            true cr.Front.cr_exact;
          Alcotest.(check bool) "no sealed epoch lost" false
            cr.Front.cr_lost_sealed;
          (if cr.Front.cr_digest_match = Some false then
             Alcotest.fail "recovered image diverges from progress-log digest");
          Alcotest.(check bool) "clients saw typed Shard_down rejections" true
            (r.Front.r_rejected_down > 0);
          Alcotest.(check bool) "survivors kept serving after the crash" true
            (cr.Front.cr_survivor_mrps > 0.0);
          Alcotest.(check bool) "modeled recovery takes virtual time" true
            (cr.Front.cr_recovery_ns > 0.0);
          List.iter
            (fun sc ->
              Alcotest.(check bool)
                (Printf.sprintf "survivor %d image durable (%s)"
                   sc.Front.sc_shard sc.Front.sc_verdict)
                true sc.Front.sc_ok)
            r.Front.r_survivors;
          Alcotest.(check int) "every survivor audited"
            (cfg.Front.shards - 1)
            (List.length r.Front.r_survivors))

(* ------------------------------------------------------------------ *)
(* Differential: for conflict-free (session-disjoint) key sets, a
   3-shard service and a single-shard service converge to the same
   final KV map — routing cannot change what the service stores. *)

let final_map cfg =
  let r = Front.run cfg in
  Alcotest.(check int) "all requests completed" 0 r.Front.r_failed;
  List.sort compare (Option.get r.Front.r_final)

let qcheck_sharded_vs_single =
  QCheck.Test.make ~count:8 ~name:"sharded vs single-shard final map"
    QCheck.(int_range 1 1_000)
    (fun seed ->
      let base =
        {
          tiny with
          Front.sessions = 24;
          requests = 6;
          keys = 480;
          prefill = 120;
          read_pct = 40;
          disjoint_keys = true;
          collect_final = true;
          seed;
        }
      in
      let sharded = final_map { base with Front.shards = 3 } in
      let single = final_map { base with Front.shards = 1 } in
      if sharded <> single then
        QCheck.Test.fail_reportf
          "seed %d: 3-shard and 1-shard maps differ (%d vs %d bindings)" seed
          (List.length sharded) (List.length single);
      true)

(* ------------------------------------------------------------------ *)

let seeded = Gen_common.to_alcotest ~suite:"service"

let () =
  Alcotest.run "service"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, byte-identical JSON" `Quick
            test_same_seed_byte_identical;
        ] );
      ( "routing",
        [
          Alcotest.test_case "ring deterministic" `Quick test_ring_deterministic;
          seeded qcheck_routing_stability;
        ] );
      ( "admission",
        [
          Alcotest.test_case "saturation bounded + typed" `Quick
            test_admission_saturation;
          Alcotest.test_case "closed queue rejects Shard_down" `Quick
            test_admission_down_typed;
        ] );
      ( "crash-under-load",
        [
          Alcotest.test_case "one shard dies, survivors keep serving" `Slow
            test_crash_one_shard_under_load;
        ] );
      ( "differential",
        [ seeded qcheck_sharded_vs_single ] );
    ]
