(* Tests for the application kernels: every variant must compute the right
   answer (persistence must never change results), and the KV store must
   complete its workload under checkpointing. *)

open Harness

let tiny =
  {
    App_experiments.matmul_n = 12;
    lr_points = 4_000;
    swaptions = 48;
    dedup_chunks = 600;
    kv_load = 400;
    kv_run = 1_200;
    kv_keys = 400;
    app_threads = 8;
    period_ns = 30_000.0;
  }

let variants =
  App_experiments.[ App_dram; App_nvm; App_respct ]

let test_matmul_correct () =
  let cfg = { Apps.Matmul.n = tiny.App_experiments.matmul_n; nthreads = 8 } in
  List.iter
    (fun variant ->
      let env, p, bump =
        App_experiments.app_world tiny variant ~nthreads:8 ~nvm_words:(1 lsl 18)
      in
      let _t, c = Apps.Matmul.run env p cfg ~bump in
      for i = 0 to cfg.Apps.Matmul.n - 1 do
        for j = 0 to cfg.Apps.Matmul.n - 1 do
          Alcotest.(check int)
            (Printf.sprintf "%s C[%d,%d]"
               (App_experiments.variant_name variant)
               i j)
            (Apps.Matmul.expected_cell cfg i j)
            (Simsched.Env.load env (c + (i * cfg.Apps.Matmul.n) + j))
        done
      done)
    variants

let test_linreg_totals () =
  let check granularity =
    let cfg =
      {
        Apps.Linreg.points = tiny.App_experiments.lr_points;
        nthreads = 8;
        granularity;
      }
    in
    let expected = Apps.Linreg.expected cfg in
    List.iter
      (fun variant ->
        let env, p, bump =
          App_experiments.app_world tiny variant ~nthreads:8
            ~nvm_words:(1 lsl 18)
        in
        let _t, totals = Apps.Linreg.run env p cfg ~bump in
        Alcotest.check Alcotest.bool
          (App_experiments.variant_name variant ^ " accumulators")
          true
          (totals = expected))
      variants
  in
  check (`Per_batch 500);
  check `Per_point

let test_swaptions_prices () =
  List.iter
    (fun granularity ->
      let cfg =
        {
          Apps.Swaptions.swaptions = tiny.App_experiments.swaptions;
          trials = 20;
          nthreads = 8;
          granularity;
        }
      in
      List.iter
        (fun variant ->
          let env, p, bump =
            App_experiments.app_world tiny variant ~nthreads:8
              ~nvm_words:(1 lsl 18)
          in
          let _t, prices = Apps.Swaptions.run env p cfg ~bump in
          for s = 0 to cfg.Apps.Swaptions.swaptions - 1 do
            Alcotest.(check int)
              (Printf.sprintf "price %d" s)
              (Apps.Swaptions.expected_price cfg s)
              (Simsched.Env.load env (prices + s))
          done)
        variants)
    [ `Per_swaption; `Per_trial ]

let test_dedup_unique_count () =
  let cfg =
    {
      Apps.Dedup.default_cfg with
      Apps.Dedup.chunks = tiny.App_experiments.dedup_chunks;
      distinct = 97;
      hashers = 4;
      writers = 3;
    }
  in
  (* All 97 distinct contents appear in 600 chunks (the stream cycles), so
     every variant must find exactly 97 unique chunks. *)
  List.iter
    (fun variant ->
      let env, p, _bump =
        App_experiments.app_world tiny variant ~nthreads:8
          ~nvm_words:(1 lsl 18)
      in
      let _t, unique = Apps.Dedup.run env p cfg in
      Alcotest.(check int)
        (App_experiments.variant_name variant ^ " unique chunks")
        97 unique)
    variants

let test_kvstore_completes () =
  List.iter
    (fun variant ->
      let cfg =
        {
          Apps.Kvstore.clients = 8;
          workers = 2;
          keys = tiny.App_experiments.kv_keys;
          buckets = tiny.App_experiments.kv_keys;
          load_ops = tiny.App_experiments.kv_load;
          run_ops = tiny.App_experiments.kv_run;
          mix = Apps.Ycsb.balanced;
        }
      in
      let env, p, _bump =
        App_experiments.app_world tiny variant ~nthreads:10
          ~nvm_words:(1 lsl 19)
      in
      let dur, ops = Apps.Kvstore.run env p cfg in
      Alcotest.check Alcotest.bool
        (App_experiments.variant_name variant ^ " completed all ops")
        true
        (ops = cfg.Apps.Kvstore.run_ops / cfg.Apps.Kvstore.clients
               * cfg.Apps.Kvstore.clients);
      Alcotest.check Alcotest.bool "positive duration" true (dur > 0.0))
    variants

(* ------------------------------------------------------------------ *)
(* YCSB generator *)

let test_zipf_bounds_and_skew () =
  let z = Apps.Ycsb.make_zipf 1000 in
  let rng = Simnvm.Rng.create 5 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let k = Apps.Ycsb.sample_zipf z rng in
    Alcotest.check Alcotest.bool "in range" true (k >= 0 && k < 1000);
    counts.(k) <- counts.(k) + 1
  done;
  (* zipfian: rank 0 far more popular than rank 500 *)
  Alcotest.check Alcotest.bool
    (Printf.sprintf "skewed (%d vs %d)" counts.(0) counts.(500))
    true
    (counts.(0) > 20 * max 1 counts.(500))

let test_ycsb_mix_ratio () =
  let z = Apps.Ycsb.make_zipf 100 in
  let rng = Simnvm.Rng.create 6 in
  let reads = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match Apps.Ycsb.next_op Apps.Ycsb.read_intensive z rng with
    | Apps.Ycsb.Get _ -> incr reads
    | Apps.Ycsb.Put _ -> ()
  done;
  let pct = 100 * !reads / n in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "~90%% reads (%d%%)" pct)
    true
    (pct >= 88 && pct <= 92)

let () =
  Alcotest.run "apps"
    [
      ( "kernels",
        [
          Alcotest.test_case "matmul result (all variants)" `Quick
            test_matmul_correct;
          Alcotest.test_case "linreg totals (both granularities)" `Quick
            test_linreg_totals;
          Alcotest.test_case "swaptions prices" `Quick test_swaptions_prices;
          Alcotest.test_case "dedup unique count" `Quick
            test_dedup_unique_count;
          Alcotest.test_case "kvstore completes" `Quick test_kvstore_completes;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "zipf bounds and skew" `Quick
            test_zipf_bounds_and_skew;
          Alcotest.test_case "mix ratio" `Quick test_ycsb_mix_ratio;
        ] );
    ]
