(* Prockill harness tests: real fork/SIGKILL, so every case degrades to
   a skip where fork is unavailable. Campaign-scale runs live in the CLI
   (`respct_experiments prockill`) and CI; the suite keeps the process
   count small. *)

let skip_unless_fork () =
  if not (Prockill.fork_available ()) then
    Alcotest.skip ()

let dir = lazy (Prockill.default_dir ())

let replay_roundtrip () =
  let p =
    { Prockill.seed = 7; trial = 123; threads = 3; keyspace = 48;
      kill_delay_us = 4321; mutant = true }
  in
  Alcotest.(check bool)
    "replay string round-trips" true
    (Prockill.parse_replay (Prockill.replay_string p) = Some p);
  Alcotest.(check bool)
    "garbage does not parse" true
    (Prockill.parse_replay "seed=1;bogus" = None)

let fault_free_trial () =
  skip_unless_fork ();
  let p =
    { Prockill.seed = 101; trial = 0; threads = 2; keyspace = 64;
      kill_delay_us = 4_000; mutant = false }
  in
  let o = Prockill.run_trial p ~dir:(Lazy.force dir) in
  Alcotest.(check (list string))
    "no oracle violations on fault-free media" []
    (List.map (Fmt.str "%a" Prockill.pp_violation) o.Prockill.o_violations)

(* Satellite: SIGKILL a recovery pass mid-flight; the final verified
   recovery must still satisfy every oracle (recovery is idempotent). *)
let kill_during_recovery_trial () =
  skip_unless_fork ();
  let p =
    { Prockill.seed = 202; trial = 1; threads = 1; keyspace = 32;
      kill_delay_us = 3_000; mutant = false }
  in
  let o =
    Prockill.run_trial ~recovery_kill:true ~recovery_kill_delay_us:300 p
      ~dir:(Lazy.force dir)
  in
  Alcotest.(check (list string))
    "idempotent after killed recovery" []
    (List.map (Fmt.str "%a" Prockill.pp_violation) o.Prockill.o_violations)

(* The planted psync-elision mutant must be caught, and the
   counterexample must replay from its shrunk parameter string. *)
let mutant_detected () =
  skip_unless_fork ();
  let rec hunt k =
    if k = 0 then Alcotest.fail "mutant not detected in 8 trials"
    else
      let p =
        { Prockill.seed = 303; trial = 9_000 + k; threads = 2; keyspace = 64;
          kill_delay_us = 5_000; mutant = true }
      in
      match Prockill.reproduces ~attempts:2 p ~dir:(Lazy.force dir) with
      | Some o ->
          Alcotest.(check bool) "violations reported" true
            (o.Prockill.o_violations <> []);
          let s = Prockill.replay_string o.Prockill.o_params in
          (match Prockill.parse_replay s with
          | Some p' -> Alcotest.(check bool) "replay parses back" true (p' = p)
          | None -> Alcotest.failf "unparsable replay string %S" s)
      | None -> hunt (k - 1)
  in
  hunt 4

let () =
  Alcotest.run "prockill"
    [
      ("replay", [ Alcotest.test_case "round-trip" `Quick replay_roundtrip ]);
      ( "trials",
        [
          Alcotest.test_case "fault-free kill" `Quick fault_free_trial;
          Alcotest.test_case "kill during recovery" `Quick
            kill_during_recovery_trial;
        ] );
      ("mutant", [ Alcotest.test_case "psync elision caught" `Quick mutant_detected ]);
    ]
