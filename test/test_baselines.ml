(* Tests for the baseline persistence systems: functional correctness of
   every map and queue against model oracles (driven through the harness
   builders so the full construction path is covered), plus unit tests of
   the failure-atomic section machinery and the epoch gate. *)

open Simnvm
open Simsched

let small_params threads =
  {
    Harness.Systems.default_params with
    Harness.Systems.max_threads = threads + 1;
    period_ns = 50_000.0;
    buckets = 64;
    nvm_words = 1 lsl 19;
    dram_words = 1 lsl 18;
    registry_per_slot = 1 lsl 14;
    quantum = 50.0;
  }

(* Drive a map build through random ops on one simulated thread, checking
   against a Hashtbl model. *)
let check_map kind =
  let p = small_params 1 in
  let sched, _env, _rt, build = Harness.Systems.map_system p kind in
  let failures = ref [] in
  ignore
    (Scheduler.spawn sched (fun () ->
         let ops, sys = build () in
         sys.Pds.Ops.sys_register ~slot:0;
         let model = Hashtbl.create 64 in
         let rng = Rng.create 3 in
         for i = 1 to 2000 do
           (match Gen_common.uniform_map_op rng ~key_range:150 ~value:i with
            | Gen_common.Insert (key, value) ->
                let fresh = ops.Pds.Ops.insert ~slot:0 ~key ~value in
                if fresh = Hashtbl.mem model key then
                  failures := `Insert (i, key) :: !failures;
                Hashtbl.replace model key value
            | Gen_common.Remove key ->
                let removed = ops.Pds.Ops.remove ~slot:0 ~key in
                if removed <> Hashtbl.mem model key then
                  failures := `Remove (i, key) :: !failures;
                Hashtbl.remove model key
            | Gen_common.Search key ->
                if
                  ops.Pds.Ops.search ~slot:0 ~key <> Hashtbl.find_opt model key
                then failures := `Search (i, key) :: !failures);
           ops.Pds.Ops.map_rp ~slot:0 ~id:1
         done;
         sys.Pds.Ops.sys_deregister ~slot:0;
         sys.Pds.Ops.sys_stop ()));
  (match Scheduler.run sched with
  | Scheduler.Completed -> ()
  | Scheduler.Crash_interrupt _ -> Alcotest.fail "crash");
  Alcotest.(check int)
    (Harness.Systems.name_of kind ^ " model mismatches")
    0
    (List.length !failures)

let check_queue kind =
  let p = small_params 1 in
  let sched, _env, _rt, build = Harness.Systems.queue_system p kind in
  let failures = ref 0 in
  ignore
    (Scheduler.spawn sched (fun () ->
         let ops, sys = build () in
         sys.Pds.Ops.sys_register ~slot:0;
         let model = Queue.create () in
         let rng = Rng.create 8 in
         for i = 1 to 2000 do
           (match Gen_common.uniform_queue_op rng ~value:i with
            | Gen_common.Enqueue v ->
                ops.Pds.Ops.enqueue ~slot:0 v;
                Queue.push v model
            | Gen_common.Dequeue ->
                let expected =
                  if Queue.is_empty model then None else Some (Queue.pop model)
                in
                if ops.Pds.Ops.dequeue ~slot:0 <> expected then incr failures);
           ops.Pds.Ops.queue_rp ~slot:0 ~id:1
         done;
         sys.Pds.Ops.sys_deregister ~slot:0;
         sys.Pds.Ops.sys_stop ()));
  (match Scheduler.run sched with
  | Scheduler.Completed -> ()
  | Scheduler.Crash_interrupt _ -> Alcotest.fail "crash");
  Alcotest.(check int)
    (Harness.Systems.name_of kind ^ " FIFO mismatches")
    0 !failures

let map_tests =
  List.map
    (fun kind ->
      Alcotest.test_case (Harness.Systems.name_of kind) `Quick (fun () ->
          check_map kind))
    Harness.Systems.map_kinds

let queue_tests =
  List.map
    (fun kind ->
      Alcotest.test_case (Harness.Systems.name_of kind) `Quick (fun () ->
          check_queue kind))
    Harness.Systems.queue_kinds

(* ------------------------------------------------------------------ *)
(* Fatomic unit tests *)

let fatomic_world policy =
  let mem = Memsys.create { Memsys.default_config with Memsys.nvm_words = 1 lsl 16 } in
  let sched = Scheduler.create () in
  let env = Env.make mem sched in
  let fa =
    Baselines.Fatomic.create env ~policy ~max_threads:2 ~log_base:(1 lsl 15)
      ~log_words_per_slot:1024
  in
  (mem, sched, env, fa)

let test_clobber_logs_only_war () =
  let mem, sched, _env, fa = fatomic_world Baselines.Fatomic.Clobber in
  ignore mem;
  ignore
    (Scheduler.spawn sched (fun () ->
         (* write-only op: no WAR, nothing logged *)
         Baselines.Fatomic.with_op fa ~slot:0 (fun () ->
             Baselines.Fatomic.intercepted_store fa ~slot:0 100 1);
         Alcotest.(check int) "no WAR yet" 0 fa.Baselines.Fatomic.stats_logged;
         (* read-then-write: one WAR log entry *)
         Baselines.Fatomic.with_op fa ~slot:0 (fun () ->
             let v = Baselines.Fatomic.intercepted_load fa ~slot:0 100 in
             Baselines.Fatomic.intercepted_store fa ~slot:0 100 (v + 1);
             (* second store to the same var: not re-logged *)
             Baselines.Fatomic.intercepted_store fa ~slot:0 100 (v + 2));
         Alcotest.(check int) "one WAR entry" 1 fa.Baselines.Fatomic.stats_logged));
  ignore (Scheduler.run sched)

let test_fatomic_commit_flushes_write_set () =
  let mem, sched, _env, fa = fatomic_world Baselines.Fatomic.Quadra in
  ignore
    (Scheduler.spawn sched (fun () ->
         Baselines.Fatomic.with_op fa ~slot:0 (fun () ->
             Baselines.Fatomic.intercepted_store fa ~slot:0 64 7;
             Baselines.Fatomic.intercepted_store fa ~slot:0 65 8;
             (* same line: one flush *)
             Baselines.Fatomic.intercepted_store fa ~slot:0 256 9)));
  ignore (Scheduler.run sched);
  Alcotest.(check int) "two lines flushed" 2
    fa.Baselines.Fatomic.stats_flushed_lines;
  (* durable linearizability: committed values are in NVMM *)
  Alcotest.(check int) "persisted" 8 (Memsys.persisted mem 65);
  Alcotest.(check int) "persisted" 9 (Memsys.persisted mem 256)

let test_readonly_op_commits_free () =
  let _mem, sched, env, fa = fatomic_world Baselines.Fatomic.Clobber in
  ignore
    (Scheduler.spawn sched (fun () ->
         (* warm the line so the measurement sees only the op protocol *)
         ignore (Baselines.Fatomic.intercepted_load fa ~slot:0 100);
         Baselines.Fatomic.commit fa ~slot:0;
         let t0 = Scheduler.now (Env.sched env) in
         Baselines.Fatomic.with_op fa ~slot:0 (fun () ->
             ignore (Baselines.Fatomic.intercepted_load fa ~slot:0 100));
         let cost = Scheduler.now (Env.sched env) -. t0 in
         (* no pwb/psync on the read path: well under a flush+fence *)
         Alcotest.(check bool) "cheap read op" true (cost < 150.0)));
  ignore (Scheduler.run sched)

(* ------------------------------------------------------------------ *)
(* Epoch gate *)

let test_epoch_gate_quiesces () =
  let sched = Scheduler.create () in
  let gate = Baselines.Epoch_gate.create sched ~max_threads:4 in
  let in_epoch = ref false in
  let violations = ref 0 in
  Baselines.Epoch_gate.start gate ~period_ns:20_000.0 (fun () ->
      in_epoch := true;
      Scheduler.charge sched 2_000.0;
      in_epoch := false);
  let done_count = ref 0 in
  for w = 0 to 3 do
    ignore
      (Scheduler.spawn sched (fun () ->
           Baselines.Epoch_gate.register gate ~slot:w;
           for _ = 1 to 2000 do
             if !in_epoch then incr violations;
             Scheduler.charge sched 50.0;
             Scheduler.poll sched;
             Baselines.Epoch_gate.pause_point gate ~slot:w
           done;
           Baselines.Epoch_gate.deregister gate ~slot:w;
           incr done_count;
           if !done_count = 4 then Baselines.Epoch_gate.stop gate))
  done;
  (match Scheduler.run sched with
  | Scheduler.Completed -> ()
  | Scheduler.Crash_interrupt _ -> Alcotest.fail "crash");
  Alcotest.(check int) "no worker ran inside an epoch body" 0 !violations;
  Alcotest.(check bool) "epochs happened" true
    (Baselines.Epoch_gate.epochs gate >= 3)

let test_epoch_gate_allow_prevent () =
  (* A thread parked in allow-state must not block the epoch. *)
  let sched = Scheduler.create () in
  let gate = Baselines.Epoch_gate.create sched ~max_threads:2 in
  Baselines.Epoch_gate.start gate ~period_ns:10_000.0 (fun () -> ());
  ignore
    (Scheduler.spawn sched (fun () ->
         Baselines.Epoch_gate.register gate ~slot:0;
         Baselines.Epoch_gate.allow gate ~slot:0;
         Scheduler.sleep sched 50_000.0 (* blocked across several epochs *);
         Baselines.Epoch_gate.prevent gate ~slot:0;
         Baselines.Epoch_gate.deregister gate ~slot:0;
         Baselines.Epoch_gate.stop gate));
  (match Scheduler.run sched with
  | Scheduler.Completed -> ()
  | Scheduler.Crash_interrupt _ -> Alcotest.fail "crash");
  Alcotest.(check bool) "epochs proceeded" true
    (Baselines.Epoch_gate.epochs gate >= 3)

let () =
  Alcotest.run "baselines"
    [
      ("maps vs model", map_tests);
      ("queues vs model", queue_tests);
      ( "fatomic",
        [
          Alcotest.test_case "Clobber logs only WAR vars" `Quick
            test_clobber_logs_only_war;
          Alcotest.test_case "commit flushes the write set" `Quick
            test_fatomic_commit_flushes_write_set;
          Alcotest.test_case "read-only ops commit free" `Quick
            test_readonly_op_commits_free;
        ] );
      ( "epoch gate",
        [
          Alcotest.test_case "quiescence during epoch body" `Quick
            test_epoch_gate_quiesces;
          Alcotest.test_case "allow/prevent around blocking" `Quick
            test_epoch_gate_allow_prevent;
        ] );
    ]
