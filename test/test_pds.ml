(* Tests for the benchmark data structures: functional correctness against
   model oracles, and crash-consistency of the ResPCT variants. *)

open Simnvm
open Simsched

let mem_cfg ?(evict_rate = 0.1) () =
  {
    Memsys.default_config with
    Memsys.evict_rate = evict_rate;
    nvm_words = 1 lsl 19;
    dram_words = 1 lsl 16;
    sets = 128;
    ways = 8;
  }

let world ?evict_rate ?(seed = 1) () =
  let mem = Memsys.create { (mem_cfg ?evict_rate ()) with Memsys.seed = seed } in
  let sched = Scheduler.create ~seed () in
  let env = Env.make mem sched in
  (mem, sched, env)

let rt_cfg =
  {
    Respct.Runtime.period_ns = 40_000.0;
    flusher_pool = 4;
    mode = Respct.Runtime.Full;
    max_threads = 8;
    registry_per_slot = 1 lsl 14;
    integrity = false;
    pipeline = false;
  }

let in_thread sched body =
  ignore (Scheduler.spawn sched body);
  match Scheduler.run sched with
  | Scheduler.Completed -> ()
  | Scheduler.Crash_interrupt _ -> Alcotest.fail "unexpected crash"

(* ------------------------------------------------------------------ *)
(* Transient structures vs model *)

let transient_map env =
  let mcfg = Memsys.config (Env.mem env) in
  let bump = Pds.Bump.create env ~base:8 ~limit:mcfg.Memsys.nvm_words in
  Pds.Hashmap_transient.create env (Pds.Mem_iface.of_env_bump env bump) ~buckets:64

let test_transient_map_model () =
  let _mem, sched, env = world () in
  in_thread sched (fun () ->
      let m = transient_map env in
      let model = Hashtbl.create 64 in
      let rng = Rng.create 5 in
      for i = 1 to 3000 do
        let key = Rng.int rng 200 in
        match Rng.int rng 3 with
        | 0 ->
            let expected = not (Hashtbl.mem model key) in
            Alcotest.(check bool) "insert fresh" expected
              (Pds.Hashmap_transient.insert m ~slot:0 ~key ~value:i);
            Hashtbl.replace model key i
        | 1 ->
            let expected = Hashtbl.mem model key in
            Alcotest.(check bool) "remove present" expected
              (Pds.Hashmap_transient.remove m ~slot:0 ~key);
            Hashtbl.remove model key
        | _ ->
            Alcotest.(check (option int)) "search"
              (Hashtbl.find_opt model key)
              (Pds.Hashmap_transient.search m ~slot:0 ~key)
      done)

let test_transient_queue_fifo () =
  let _mem, sched, env = world () in
  in_thread sched (fun () ->
      let mcfg = Memsys.config (Env.mem env) in
      let bump = Pds.Bump.create env ~base:8 ~limit:mcfg.Memsys.nvm_words in
      let q =
        Pds.Queue_transient.create env (Pds.Mem_iface.of_env_bump env bump)
      in
      let model = Queue.create () in
      let rng = Rng.create 9 in
      for i = 1 to 3000 do
        if Rng.bool rng then begin
          Pds.Queue_transient.enqueue q ~slot:0 i;
          Queue.push i model
        end
        else
          Alcotest.(check (option int)) "dequeue"
            (if Queue.is_empty model then None else Some (Queue.pop model))
            (Pds.Queue_transient.dequeue q ~slot:0)
      done)

(* ------------------------------------------------------------------ *)
(* ResPCT structures vs model (functional, no crash) *)

let test_respct_map_model () =
  let _mem, sched, env = world () in
  let rt = Respct.Runtime.create ~cfg:rt_cfg env in
  Respct.Runtime.start rt;
  ignore
    (Respct.Runtime.spawn rt ~slot:0 (fun _ctx ->
         let m = Pds.Hashmap_respct.create rt ~slot:0 ~buckets:64 in
         let model = Hashtbl.create 64 in
         let rng = Rng.create 6 in
         for i = 1 to 3000 do
           (let key = Rng.int rng 200 in
            match Rng.int rng 3 with
            | 0 ->
                Alcotest.(check bool) "insert fresh"
                  (not (Hashtbl.mem model key))
                  (Pds.Hashmap_respct.insert m ~slot:0 ~key ~value:i);
                Hashtbl.replace model key i
            | 1 ->
                Alcotest.(check bool) "remove present" (Hashtbl.mem model key)
                  (Pds.Hashmap_respct.remove m ~slot:0 ~key);
                Hashtbl.remove model key
            | _ ->
                Alcotest.(check (option int)) "search"
                  (Hashtbl.find_opt model key)
                  (Pds.Hashmap_respct.search m ~slot:0 ~key));
           Respct.Runtime.rp rt ~slot:0 1
         done;
         Respct.Runtime.stop rt));
  match Scheduler.run sched with
  | Scheduler.Completed -> ()
  | Scheduler.Crash_interrupt _ -> Alcotest.fail "crash"

let test_respct_queue_fifo_and_reuse () =
  let _mem, sched, env = world () in
  let rt = Respct.Runtime.create ~cfg:rt_cfg env in
  Respct.Runtime.start rt;
  ignore
    (Respct.Runtime.spawn rt ~slot:0 (fun _ctx ->
         let q = Pds.Queue_respct.create rt ~slot:0 in
         let model = Queue.create () in
         let rng = Rng.create 4 in
         for i = 1 to 4000 do
           (if Rng.bool rng then begin
              Pds.Queue_respct.enqueue q ~slot:0 i;
              Queue.push i model
            end
            else
              Alcotest.(check (option int)) "dequeue"
                (if Queue.is_empty model then None else Some (Queue.pop model))
                (Pds.Queue_respct.dequeue q ~slot:0));
           Respct.Runtime.rp rt ~slot:0 1
         done;
         Respct.Runtime.stop rt));
  (match Scheduler.run sched with
  | Scheduler.Completed -> ()
  | Scheduler.Crash_interrupt _ -> Alcotest.fail "crash");
  (* alloc/free churn across ~100 checkpoints must stay within the heap:
     nodes are recycled (4 words each, 4000 ops worst case well below the
     arena if reuse works) *)
  let used =
    Respct.Heap.used (Respct.Runtime.ctx rt ~slot:0) (Respct.Runtime.heap rt)
  in
  Alcotest.(check bool)
    (Printf.sprintf "heap bounded by reuse (%d words)" used)
    true (used < 40_000)

(* ------------------------------------------------------------------ *)
(* Crash-consistency: recovered structure contents = last checkpoint *)

let crash_trial_map seed =
  let mem, sched, env = world ~evict_rate:0.2 ~seed () in
  let rt = Respct.Runtime.create ~cfg:rt_cfg env in
  let map = ref None in
  let snapshots = Hashtbl.create 8 in
  ignore
    (Scheduler.spawn ~name:"cp" sched (fun () ->
         let rec loop deadline =
           Scheduler.sleep_until sched deadline;
           Respct.Runtime.run_checkpoint rt ~on_flushed:(fun e ->
               Option.iter
                 (fun m ->
                   Hashtbl.replace snapshots e
                     (Pds.Hashmap_respct.persisted_bindings mem m))
                 !map);
           loop (deadline +. 30_000.0)
         in
         loop 30_000.0));
  for w = 0 to 1 do
    ignore
      (Respct.Runtime.spawn rt ~slot:w (fun _ctx ->
           if w = 0 then
             map := Some (Pds.Hashmap_respct.create rt ~slot:0 ~buckets:32);
           while !map = None do
             Scheduler.sleep sched 500.0
           done;
           let m = Option.get !map in
           let rng = Rng.create (seed * 13 + w) in
           let rec loop i =
             (match Gen_common.update_heavy_map_op rng ~key_range:128 ~value:i with
             | Gen_common.Remove key ->
                 ignore (Pds.Hashmap_respct.remove m ~slot:w ~key)
             | Gen_common.Insert (key, value) ->
                 ignore (Pds.Hashmap_respct.insert m ~slot:w ~key ~value)
             | Gen_common.Search key ->
                 ignore (Pds.Hashmap_respct.search m ~slot:w ~key));
             Respct.Runtime.rp rt ~slot:w 1;
             loop (i + 1)
           in
           loop (w * 1_000_000)))
  done;
  Scheduler.set_crash_at sched (60_000.0 +. float_of_int (seed * 9_173));
  (match Scheduler.run sched with
  | Scheduler.Crash_interrupt _ -> ()
  | Scheduler.Completed -> Alcotest.fail "expected crash");
  Memsys.crash mem;
  let rep = Respct.Recovery.run ~threads:2 ~layout:(Respct.Runtime.layout rt) mem in
  match Hashtbl.find_opt snapshots rep.Respct.Recovery.failed_epoch with
  | None -> None
  | Some snap ->
      Some (snap, Pds.Hashmap_respct.persisted_bindings mem (Option.get !map))

let test_map_crash_recovery () =
  let checked = ref 0 in
  for seed = 1 to 6 do
    match crash_trial_map seed with
    | None -> ()
    | Some (snap, recovered) ->
        incr checked;
        Alcotest.(check int)
          (Printf.sprintf "binding count (seed %d)" seed)
          (List.length snap) (List.length recovered);
        Alcotest.(check bool)
          (Printf.sprintf "contents equal (seed %d)" seed)
          true (snap = recovered)
  done;
  Alcotest.(check bool) "at least one trial checked" true (!checked > 0)

let crash_trial_queue seed =
  let mem, sched, env = world ~evict_rate:0.2 ~seed () in
  let rt = Respct.Runtime.create ~cfg:rt_cfg env in
  let queue = ref None in
  let snapshots = Hashtbl.create 8 in
  ignore
    (Scheduler.spawn ~name:"cp" sched (fun () ->
         let rec loop deadline =
           Scheduler.sleep_until sched deadline;
           Respct.Runtime.run_checkpoint rt ~on_flushed:(fun e ->
               Option.iter
                 (fun q ->
                   Hashtbl.replace snapshots e
                     (Pds.Queue_respct.persisted_contents mem q))
                 !queue);
           loop (deadline +. 30_000.0)
         in
         loop 30_000.0));
  ignore
    (Respct.Runtime.spawn rt ~slot:0 (fun _ctx ->
         let q = Pds.Queue_respct.create rt ~slot:0 in
         queue := Some q;
         let rng = Rng.create (seed * 17) in
         let rec loop i =
           (match Gen_common.biased_queue_op rng ~value:i with
           | Gen_common.Enqueue v -> Pds.Queue_respct.enqueue q ~slot:0 v
           | Gen_common.Dequeue -> ignore (Pds.Queue_respct.dequeue q ~slot:0));
           Respct.Runtime.rp rt ~slot:0 1;
           loop (i + 1)
         in
         loop 1));
  Scheduler.set_crash_at sched (55_000.0 +. float_of_int (seed * 8_111));
  (match Scheduler.run sched with
  | Scheduler.Crash_interrupt _ -> ()
  | Scheduler.Completed -> Alcotest.fail "expected crash");
  Memsys.crash mem;
  let rep = Respct.Recovery.run ~layout:(Respct.Runtime.layout rt) mem in
  match Hashtbl.find_opt snapshots rep.Respct.Recovery.failed_epoch with
  | None -> None
  | Some snap ->
      Some (snap, Pds.Queue_respct.persisted_contents mem (Option.get !queue))

let test_queue_crash_recovery () =
  let checked = ref 0 in
  for seed = 1 to 6 do
    match crash_trial_queue seed with
    | None -> ()
    | Some (snap, recovered) ->
        incr checked;
        Alcotest.(check (list int))
          (Printf.sprintf "queue contents (seed %d)" seed)
          snap recovered
  done;
  Alcotest.(check bool) "at least one trial checked" true (!checked > 0)

(* ------------------------------------------------------------------ *)
(* Backend-generic oracle walk ([bindings_of]) over a Filemem image.

   [persisted_bindings] ties the walk to Memsys; the raw walker must
   give the same answer when the durable medium is a file image, read
   through [Filemem.persisted] after a power cut. *)

let filemem_world seed path =
  let cfg =
    {
      Filemem.default_config with
      Filemem.nvm_words = 1 lsl 16;
      Filemem.dram_words = 1 lsl 12;
      Filemem.evict_rate = 0.0;
      Filemem.seed;
    }
  in
  let meta =
    {
      Filemem.max_threads = 2;
      Filemem.registry_per_slot = 1 lsl 12;
      Filemem.integrity = true;
    }
  in
  let fm = Filemem.create ~meta cfg ~path in
  let sched = Scheduler.create ~seed () in
  let env = Env.make_backend (Filemem.backend fm) sched in
  (fm, sched, env)

let test_filemem_oracle_walk () =
  let path = Filename.temp_file "pds-walk" ".img" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let fm, sched, env = filemem_world 7 path in
      let rt =
        Respct.Runtime.create
          ~cfg:
            {
              rt_cfg with
              Respct.Runtime.max_threads = 2;
              registry_per_slot = 1 lsl 12;
              integrity = true;
            }
          env
      in
      let model = Hashtbl.create 64 in
      let sealed = ref (-1) in
      let map = ref None in
      ignore
        (Scheduler.spawn ~name:"walk-cp" sched (fun () ->
             while Option.is_none !map do
               Scheduler.sleep sched 500.0
             done;
             (* the worker deregisters when it finishes, so this checkpoint
                quiesces trivially and seals the final contents *)
             Respct.Runtime.run_checkpoint rt ~on_flushed:(fun e ->
                 sealed := e);
             Respct.Runtime.stop rt));
      ignore
        (Respct.Runtime.spawn rt ~slot:0 (fun _ctx ->
             let m = Pds.Hashmap_respct.create rt ~slot:0 ~buckets:32 in
             let rng = Rng.create 99 in
             for i = 1 to 400 do
               let key = Rng.int rng 96 in
               (if Rng.int rng 4 = 0 then begin
                  ignore (Pds.Hashmap_respct.remove m ~slot:0 ~key);
                  Hashtbl.remove model key
                end
                else begin
                  ignore (Pds.Hashmap_respct.insert m ~slot:0 ~key ~value:i);
                  Hashtbl.replace model key i
                end);
               Respct.Runtime.rp rt ~slot:0 1
             done;
             map := Some m));
      (match Scheduler.run sched with
      | Scheduler.Completed -> ()
      | Scheduler.Crash_interrupt _ -> Alcotest.fail "unexpected crash");
      Alcotest.(check bool) "a checkpoint sealed" true (!sealed >= 1);
      let m = Option.get !map in
      (* power cut: only the durable image survives *)
      Filemem.crash fm;
      let v =
        Respct.Recovery.run_verified_backend
          ~layout:(Respct.Runtime.layout rt)
          (Filemem.backend fm)
      in
      Alcotest.(check bool)
        "recovered exactly" true
        (Respct.Recovery.exact_image v.Respct.Recovery.verdict);
      let walked =
        Pds.Hashmap_respct.bindings_of
          ~read:(Filemem.persisted fm)
          ~line_words:(Filemem.config fm).Filemem.line_words
          ~fuel:(1 lsl 16)
          ~heads:(Pds.Hashmap_respct.heads m)
          ~buckets:(Pds.Hashmap_respct.buckets m)
      in
      let expected =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort compare
      in
      Alcotest.(check (list (pair int int)))
        "file-image walk equals the model" expected walked;
      (* the fuel bound must hold against adversarial images *)
      Alcotest.check_raises "cyclic-chain fuel bound"
        (Failure "persisted bucket chain is cyclic") (fun () ->
          ignore
            (Pds.Hashmap_respct.bindings_of
               ~read:(fun _ -> 8)
               ~line_words:(Filemem.config fm).Filemem.line_words ~fuel:4
               ~heads:(Pds.Hashmap_respct.heads m)
               ~buckets:1));
      Filemem.close fm)

(* ------------------------------------------------------------------ *)
(* Bump allocator *)

let test_bump_reuse () =
  let _mem, sched, env = world () in
  in_thread sched (fun () ->
      let bump = Pds.Bump.create env ~base:8 ~limit:4096 in
      let a = Pds.Bump.alloc bump ~words:4 in
      Pds.Bump.free bump a ~words:4;
      Alcotest.(check int) "transient free list reuses immediately" a
        (Pds.Bump.alloc bump ~words:4);
      Alcotest.check_raises "oom" (Failure "Bump.alloc: out of memory")
        (fun () -> ignore (Pds.Bump.alloc bump ~words:100_000)))

let () =
  Alcotest.run "pds"
    [
      ( "transient",
        [
          Alcotest.test_case "hashmap vs model" `Quick test_transient_map_model;
          Alcotest.test_case "queue FIFO vs model" `Quick
            test_transient_queue_fifo;
          Alcotest.test_case "bump allocator" `Quick test_bump_reuse;
        ] );
      ( "respct",
        [
          Alcotest.test_case "hashmap vs model under checkpoints" `Quick
            test_respct_map_model;
          Alcotest.test_case "queue FIFO + node reuse" `Quick
            test_respct_queue_fifo_and_reuse;
        ] );
      ( "crash-consistency",
        [
          Alcotest.test_case "map recovers last checkpoint (6 seeds)" `Quick
            test_map_crash_recovery;
          Alcotest.test_case "queue recovers last checkpoint (6 seeds)" `Quick
            test_queue_crash_recovery;
        ] );
      ( "oracle-walk",
        [
          Alcotest.test_case "bindings_of over a Filemem image" `Quick
            test_filemem_oracle_walk;
        ] );
    ]
